//! The multi-tenant serving study: sweep arrival rate × policy × MCDRAM
//! budget over a seeded heavy-tailed job trace on the simulated KNL 7250,
//! print the fleet statistics per cell, and write
//! `results/serve_study.csv`.

use mlm_bench::report::{render_table, secs, write_csv};
use mlm_bench::serving::{serve_study, SERVE_JOBS, SERVE_SEED};

fn main() {
    let rows = serve_study().expect("serve study failed");
    let headers = [
        "arrival_rate",
        "policy",
        "budget_gib",
        "jobs",
        "rejected",
        "makespan_s",
        "mean_wait_s",
        "mean_latency_s",
        "p50_s",
        "p95_s",
        "p99_s",
        "max_s",
        "mcdram_hwm_gib",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.stats;
            vec![
                format!("{:.2}", r.arrival_rate),
                r.policy.label().to_string(),
                r.budget_gib.to_string(),
                s.jobs.to_string(),
                s.rejected.to_string(),
                secs(s.makespan),
                secs(s.mean_queue_wait),
                secs(s.mean_latency),
                secs(s.p50_latency),
                secs(s.p95_latency),
                secs(s.p99_latency),
                secs(s.max_latency),
                format!("{:.2}", s.mcdram_high_water as f64 / (1u64 << 30) as f64),
            ]
        })
        .collect();
    println!("Serving study — {SERVE_JOBS} jobs per cell, seed {SERVE_SEED:#x}, KNL 7250 (flat)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("serve_study", &headers, &body) {
        println!("wrote {path}");
    }
}
