//! §6 future work: explore alternative near-memory configurations and
//! report what the paper's chunked algorithm is worth on each — "in hopes
//! of suggesting more optimal design points for both hardware and
//! applications".

use mlm_bench::experiments::design_space;
use mlm_bench::report::{ratio, render_table, secs, write_csv};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let points = design_space(&cal).expect("design space simulation failed");
    let headers = [
        "BW ratio (near/DDR)",
        "Capacity (GiB)",
        "Megachunk (elems)",
        "MLM-sort (s)",
        "GNU-flat (s)",
        "Speedup",
    ];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.bw_ratio),
                p.capacity_gib.to_string(),
                p.megachunk.to_string(),
                secs(p.mlm_seconds),
                secs(p.gnu_seconds),
                ratio(p.speedup),
            ]
        })
        .collect();
    println!("Design-space exploration — 2B random int64, 256 threads");
    println!("(the KNL itself is the 4.44x / 16 GiB row)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("design_space", &headers, &body) {
        println!("wrote {path}");
    }
}
