//! §6 "more benchmarks": the purely bandwidth-bound radix sort through the
//! chunking framework, against the comparison-bound introsort — the more
//! bandwidth-bound the kernel, the more MCDRAM chunking is worth.

use mlm_bench::experiments::radix_study;
use mlm_bench::report::{ratio, render_table, secs, write_csv};
use mlm_core::Calibration;

fn main() {
    let rows = radix_study(&Calibration::default()).expect("radix study failed");
    let headers = [
        "Kernel",
        "DDR only (s)",
        "MCDRAM chunked (s)",
        "Chunking speedup",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                secs(r.ddr_seconds),
                secs(r.mlm_seconds),
                ratio(r.speedup),
            ]
        })
        .collect();
    println!("Radix study — 2B int64, 1B megachunks, 256 threads\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("radix_study", &headers, &body) {
        println!("wrote {path}");
    }
}
