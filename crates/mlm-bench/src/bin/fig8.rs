//! Regenerate Figure 8: merge-benchmark execution time vs copy threads for
//! repeats 1..64 — model prediction (panel a) and simulated empirical
//! times (panel b).

use mlm_bench::experiments::fig8;
use mlm_bench::report::{render_table, write_csv};
use mlm_core::Calibration;

fn main() {
    let cal = Calibration::default();
    let points = fig8(&cal).expect("fig8 simulation failed");

    let headers = ["Repeats", "Copy threads", "Model (s)", "Empirical sim (s)"];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.repeats.to_string(),
                p.copy_threads.to_string(),
                p.model_seconds
                    .map_or_else(|| "-".into(), |t| format!("{t:.3}")),
                format!("{:.3}", p.sim_seconds),
            ]
        })
        .collect();
    println!("Figure 8 — merge benchmark: model (a) and empirical (b)\n");
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("fig8", &headers, &body) {
        println!("wrote {path}");
    }
}
