//! Fleet placement study and throughput benchmark driver.
//!
//! Three modes, run from the repo root in release:
//!
//! * default — run the deterministic CSV sweep (nodes × placement ×
//!   policy at [`CSV_JOBS_PER_NODE`] jobs per node-stream), print the
//!   table, and write `results/fleet_study.csv`. Byte-reproducible, so
//!   CI's results-drift job regenerates and diffs it.
//! * `--bench` — additionally run the million-job throughput benchmark
//!   (16 nodes × [`BENCH_JOBS_PER_NODE`] jobs, one cell per
//!   `BENCH_PLACEMENTS` policy) and write `BENCH_fleet.json` with
//!   jobs/sec and the decision digests.
//! * `--check` — re-run the benchmark and compare against the committed
//!   `BENCH_fleet.json`: **hard failure** (`::error::`, nonzero exit)
//!   when any placement decision digest drifts or when best-fit-hbw no
//!   longer beats least-loaded on strict-HBW p99; **warning**
//!   (`::warning::`, exit 0) when jobs/sec falls more than 20% below the
//!   baseline — wall-clock noise on shared runners is a signal, not a
//!   gate. Check mode never rewrites the baseline.

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use mlm_bench::fleet::{
    fleet_study, run_fleet_bench, FleetBenchReport, BENCH_JOBS_PER_NODE, CSV_JOBS_PER_NODE,
    FLEET_SEED,
};
use mlm_bench::report::{render_table, secs, write_csv};

const OUT: &str = "BENCH_fleet.json";
/// Warn when a cell's jobs/sec falls below this fraction of the baseline.
const REGRESSION_FLOOR: f64 = 0.80;

fn write_study_csv() {
    let rows = fleet_study(CSV_JOBS_PER_NODE).expect("fleet study failed");
    let headers = [
        "nodes",
        "placement",
        "policy",
        "jobs",
        "rejected",
        "steals",
        "makespan_s",
        "mean_wait_s",
        "mean_latency_s",
        "p99_s",
        "strict_p99_s",
        "mcdram_hwm_gib",
        "digest",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.stats;
            vec![
                r.nodes.to_string(),
                r.placement.label().to_string(),
                r.policy.label().to_string(),
                s.jobs.to_string(),
                s.rejected.to_string(),
                r.steals.to_string(),
                secs(s.makespan),
                secs(s.mean_queue_wait),
                secs(s.mean_latency),
                secs(s.p99_latency),
                secs(r.strict_p99),
                format!("{:.2}", s.mcdram_high_water as f64 / (1u64 << 30) as f64),
                format!("{:#018x}", r.digest),
            ]
        })
        .collect();
    println!(
        "Fleet study — {CSV_JOBS_PER_NODE} jobs per node-stream, seed {FLEET_SEED:#x}, \
         mixed 8/16 GiB KNL 7250 fleet, steal on\n"
    );
    println!("{}", render_table(&headers, &body));
    if let Ok(path) = write_csv("fleet_study", &headers, &body) {
        println!("wrote {path}");
    }
}

fn print_bench(report: &FleetBenchReport) {
    println!(
        "\nFleet bench — {} nodes, {} jobs per cell",
        report.nodes, report.total_jobs
    );
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>11} {:>12} {:>19}",
        "placement", "jobs", "rejected", "steals", "jobs/sec", "strict_p99", "digest"
    );
    for c in &report.cells {
        println!(
            "{:<14} {:>9} {:>9} {:>8} {:>11.0} {:>12} {:>19}",
            c.placement,
            c.jobs,
            c.rejected,
            c.steals,
            c.jobs_per_sec,
            secs(c.strict_p99),
            c.digest
        );
    }
}

/// The study's headline claim, at full scale: best-fit-hbw must beat
/// least-loaded on strict-HBW p99.
fn claim_holds(report: &FleetBenchReport) -> bool {
    let p99 = |label: &str| {
        report
            .cells
            .iter()
            .find(|c| c.placement == label)
            .map(|c| c.strict_p99)
    };
    match (p99("best-fit-hbw"), p99("least-loaded")) {
        (Some(best), Some(spread)) => best < spread,
        _ => false,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let bench = args.iter().any(|a| a == "--bench");

    if !check {
        write_study_csv();
        if !bench {
            return ExitCode::SUCCESS;
        }
    }

    let baseline: Option<FleetBenchReport> = if check {
        match fs::read_to_string(OUT) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(report) => Some(report),
                Err(e) => {
                    println!("::warning::{OUT} is unreadable ({e}); skipping comparison");
                    None
                }
            },
            Err(_) => {
                println!("::warning::no committed {OUT}; skipping comparison");
                None
            }
        }
    } else {
        None
    };

    let report = run_fleet_bench(BENCH_JOBS_PER_NODE).expect("fleet bench failed");
    print_bench(&report);

    if !claim_holds(&report) {
        println!(
            "::error::fleet claim violated: best-fit-hbw strict p99 no longer \
             beats least-loaded at {} nodes",
            report.nodes
        );
        return ExitCode::FAILURE;
    }
    println!("claim holds: best-fit-hbw < least-loaded on strict-HBW p99");

    if let Some(base) = baseline {
        let old: HashMap<&str, (&str, f64)> = base
            .cells
            .iter()
            .map(|c| (c.placement.as_str(), (c.digest.as_str(), c.jobs_per_sec)))
            .collect();
        let mut drifted = false;
        for c in &report.cells {
            let Some(&(digest, prev)) = old.get(c.placement.as_str()) else {
                println!("::warning::no baseline cell for {}", c.placement);
                continue;
            };
            // Placement decisions are deterministic: any digest change is
            // a behaviour change, not noise.
            if c.digest != digest {
                drifted = true;
                println!(
                    "::error::placement decision drift at {}: digest {} vs committed {}",
                    c.placement, c.digest, digest
                );
            }
            if prev > 0.0 && c.jobs_per_sec < REGRESSION_FLOOR * prev {
                println!(
                    "::warning::fleet throughput regression at {}: {:.0} jobs/sec \
                     vs baseline {:.0} ({:+.1}%)",
                    c.placement,
                    c.jobs_per_sec,
                    prev,
                    100.0 * (c.jobs_per_sec / prev - 1.0)
                );
            }
        }
        if drifted {
            return ExitCode::FAILURE;
        }
        // Check mode never rewrites the committed baseline.
        return ExitCode::SUCCESS;
    }

    if check {
        return ExitCode::SUCCESS;
    }

    let json = serde_json::to_string(&report).expect("report serializes");
    fs::write(OUT, json + "\n").expect("write BENCH_fleet.json");
    println!("wrote {OUT}");
    ExitCode::SUCCESS
}
