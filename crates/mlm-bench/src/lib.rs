//! # mlm-bench — the experiment harness
//!
//! One driver per table/figure of the paper's evaluation, shared between
//! the `src/bin/*` binaries (which print tables and write CSVs under
//! `results/`) and the integration tests (which assert the paper's
//! qualitative claims hold).
//!
//! | paper artifact | driver | binary |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | `table1` |
//! | Figure 6a/6b | [`experiments::fig6`] | `fig6` |
//! | Figure 7 | [`experiments::fig7`] | `fig7` |
//! | Table 2 | [`experiments::table2_sim`] | `table2` |
//! | Figure 8a/8b | [`experiments::fig8`] | `fig8` |
//! | Table 3 | [`experiments::table3`] | `table3` |
//! | §2.3 / §4 Bender corroboration | [`experiments::bender_check`] | `bender_check` |
//! | host lockstep-vs-dataflow ablation | [`experiments::host_pipeline_ablation`] | `host_ablation` |
//! | multi-tenant serving study | [`serving::serve_study`] | `serve_study` |
//! | fleet placement study | [`fleet::fleet_study`] | `fleet_study` |

pub mod calibrate;
pub mod experiments;
pub mod fleet;
pub mod paper;
pub mod report;
pub mod serving;
pub mod sim_bench;
pub mod verify;

/// Number of simulated hardware threads the paper's runs used.
pub const PAPER_THREADS: usize = 256;

/// One billion elements — the paper's problem-size unit.
pub const BILLION: u64 = 1_000_000_000;
