//! The fleet study: sweep node count × placement policy × queueing
//! policy over λ-scaled fleet traces, and the fleet throughput benchmark
//! behind `BENCH_fleet.json`.
//!
//! This is the multi-node follow-on to [`crate::serving`]: once the
//! serving broker is sharded across a fleet of KNLs with mixed 8/16 GiB
//! MCDRAM budgets, the *placement* policy — which node a job's buffer
//! ring lands on — joins the admission policy as a first-order lever on
//! strict-HBW tail latency. The study runs the fleet *above* its
//! strict-HBW capacity — sustained overload, where queues grow and
//! placement decides how gracefully the strict tail degrades — and shows
//! the effect the dispatcher was built for: best-fit-by-HBW-headroom
//! packs small strict rings into the smallest adequate hole, keeping the
//! 16 GiB nodes' headroom whole for the strict batch elephants whose
//! 12 GiB rings only those nodes can host, while least-loaded's
//! budget-normalised spreading fragments exactly that headroom — so
//! best-fit roughly halves the strict-HBW p99. (Below saturation the
//! ranking flips: with headroom everywhere, spreading is free and
//! packing just manufactures hotspots. The single-node serving study
//! covers that regime.)
//!
//! Everything is seeded and virtual-time: the same sweep produces a
//! byte-identical `results/fleet_study.csv` (including the per-cell
//! decision digests), which is what lets CI hard-fail on placement
//! decision drift while merely warning on wall-clock jobs/sec noise.

use std::time::Instant;

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::GIB;
use mlm_cluster::ClusterConfig;
use mlm_fleet::{
    decision_digest, fleet_serve, fleet_trace, FleetConfig, FleetJob, FleetTraceConfig,
    PlacementPolicy,
};
use mlm_serve::{FleetStats, Policy, TraceConfig};
use serde::{Deserialize, Serialize};

/// Fleet trace seed; every run of the study is bit-for-bit deterministic.
pub const FLEET_SEED: u64 = 0xf1ee_cafe;

/// Node-count sweep: a single node (the degenerate fleet, comparable to
/// the single-node serving study), a rack slice, and a full rack row.
pub const NODE_COUNTS: [usize; 3] = [1, 4, 16];

/// Jobs per node-stream in the CSV sweep (λ scales with the node count,
/// so the 16-node cells serve 16× the jobs of the 1-node cells).
pub const CSV_JOBS_PER_NODE: usize = 250;

/// Jobs per node-stream in the throughput benchmark: 16 × 62 500 = one
/// million jobs per cell, the fleet-scale trace the dispatcher must price
/// at interactive speed.
pub const BENCH_JOBS_PER_NODE: usize = 62_500;

/// Per-node base arrival rate (jobs/s) — above the fleet's strict-HBW
/// capacity for the mix below, so queues build and placement quality sets
/// the degradation slope.
pub const NODE_ARRIVAL_RATE: f64 = 3.0;

/// The two placement policies the timed benchmark compares. First-fit is
/// deliberately absent: under sustained overload its pileups grow queues
/// so long that steal scans go quadratic and a million-job cell takes
/// hours — the CSV sweep documents its (terrible) tail at a scale where
/// running it is cheap.
pub const BENCH_PLACEMENTS: [PlacementPolicy; 2] =
    [PlacementPolicy::BestFitHbw, PlacementPolicy::LeastLoaded];

/// The per-node trace template every fleet cell derives from: a
/// strict-heavy mix (70% strict, 20% batch elephants) whose elephants pin
/// 12 GiB rings (4 GiB chunks × 3 slots) only the 16 GiB nodes can host,
/// and whose strict standard jobs pin 6 GiB rings that fragment a big
/// node the moment spreading parks one there — the heterogeneity the
/// placement policies fight over.
pub fn fleet_trace_config(nodes: usize, jobs_per_node: usize) -> FleetTraceConfig {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let mut base = TraceConfig::new(machine, 0, NODE_ARRIVAL_RATE, FLEET_SEED);
    base.batch_frac = 0.20;
    base.standard_chunk = 2 * GIB;
    base.batch_chunk = 4 * GIB;
    let mut cfg = FleetTraceConfig::new(base, nodes, jobs_per_node);
    cfg.strict_frac = 0.7;
    cfg
}

/// The fleet every cell runs: mixed 8/16 GiB budgets, spill-capable (so
/// non-strict jobs ride DDR instead of queueing), stealing over an
/// Omni-Path interconnect.
pub fn fleet_config(nodes: usize, placement: PlacementPolicy, policy: Policy) -> FleetConfig {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let mut cfg = FleetConfig::mixed_8_16(machine, nodes, true);
    cfg.placement = placement;
    cfg.policy = policy;
    cfg.steal = true;
    cfg.cluster = Some(ClusterConfig::omnipath(nodes));
    cfg
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct FleetStudyRow {
    /// Fleet size.
    pub nodes: usize,
    /// Dispatcher placement policy.
    pub placement: PlacementPolicy,
    /// Per-node queueing policy.
    pub policy: Policy,
    /// Fleet-wide statistics.
    pub stats: FleetStats,
    /// p99 end-to-end latency over strict-HBW jobs — the number placement
    /// policies compete on.
    pub strict_p99: f64,
    /// Work-steal migrations performed.
    pub steals: usize,
    /// Canonical decision digest ([`mlm_fleet::decision_digest`]); any
    /// change here is a placement/admission behaviour change.
    pub digest: u64,
}

/// Run the full sweep: node count × placement policy × queueing policy.
pub fn fleet_study(jobs_per_node: usize) -> Result<Vec<FleetStudyRow>, String> {
    let mut rows = Vec::new();
    for &nodes in &NODE_COUNTS {
        let trace = fleet_trace(&fleet_trace_config(nodes, jobs_per_node));
        for placement in PlacementPolicy::ALL {
            for &policy in &Policy::ALL {
                let cfg = fleet_config(nodes, placement, policy);
                let out = fleet_serve(&cfg, &trace)?;
                rows.push(FleetStudyRow {
                    nodes,
                    placement,
                    policy,
                    strict_p99: out.strict_p99,
                    steals: out.steals,
                    digest: decision_digest(&out.decisions, nodes),
                    stats: out.fleet,
                });
            }
        }
    }
    Ok(rows)
}

/// Find the cell for (nodes, placement, policy); panics if missing.
pub fn cell(
    rows: &[FleetStudyRow],
    nodes: usize,
    placement: PlacementPolicy,
    policy: Policy,
) -> &FleetStudyRow {
    rows.iter()
        .find(|r| r.nodes == nodes && r.placement == placement && r.policy == policy)
        .expect("sweep cell missing")
}

/// One measured cell of the throughput benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetBenchCell {
    /// Placement policy label.
    pub placement: String,
    /// Jobs completed.
    pub jobs: usize,
    /// Jobs rejected at submission.
    pub rejected: usize,
    /// Wall seconds to price the whole trace (dispatcher throughput, not
    /// simulated time).
    pub wall_secs: f64,
    /// Jobs priced per wall second — the tracked PR-over-PR number.
    pub jobs_per_sec: f64,
    /// Strict-HBW p99 latency (simulated seconds).
    pub strict_p99: f64,
    /// Work-steal migrations.
    pub steals: usize,
    /// Canonical decision digest, hex — CI hard-fails when this drifts.
    pub digest: String,
}

/// The whole benchmark report, serialized to `BENCH_fleet.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetBenchReport {
    /// Always `"fleet"`.
    pub bench: String,
    /// Always `"jobs/sec"`.
    pub unit: String,
    /// Fleet size of the benchmark (largest sweep point).
    pub nodes: usize,
    /// Jobs per node-stream.
    pub jobs_per_node: usize,
    /// Total jobs per cell.
    pub total_jobs: usize,
    /// One cell per placement policy, FIFO queueing.
    pub cells: Vec<FleetBenchCell>,
}

/// Run the throughput benchmark: the largest fleet, one cell per
/// [`BENCH_PLACEMENTS`] policy, FIFO queueing (so the placement effect is
/// unmixed).
pub fn run_fleet_bench(jobs_per_node: usize) -> Result<FleetBenchReport, String> {
    let nodes = *NODE_COUNTS.last().unwrap();
    let trace = fleet_trace(&fleet_trace_config(nodes, jobs_per_node));
    let mut cells = Vec::new();
    for placement in BENCH_PLACEMENTS {
        let cfg = fleet_config(nodes, placement, Policy::Fifo);
        let t0 = Instant::now();
        let out = fleet_serve(&cfg, &trace)?;
        let wall = t0.elapsed().as_secs_f64();
        cells.push(FleetBenchCell {
            placement: placement.label().to_string(),
            jobs: out.fleet.jobs,
            rejected: out.fleet.rejected,
            wall_secs: wall,
            jobs_per_sec: trace.len() as f64 / wall,
            strict_p99: out.strict_p99,
            steals: out.steals,
            digest: format!("{:#018x}", decision_digest(&out.decisions, nodes)),
        });
    }
    Ok(FleetBenchReport {
        bench: "fleet".to_string(),
        unit: "jobs/sec".to_string(),
        nodes,
        jobs_per_node,
        total_jobs: trace.len(),
        cells,
    })
}

/// The λ-scaled trace for external callers (tests, the bin).
pub fn study_trace(nodes: usize, jobs_per_node: usize) -> Vec<FleetJob> {
    fleet_trace(&fleet_trace_config(nodes, jobs_per_node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Reduced scale for debug-profile `cargo test`; the release bin runs
    /// [`CSV_JOBS_PER_NODE`] and [`BENCH_JOBS_PER_NODE`].
    const TEST_JOBS_PER_NODE: usize = 40;

    fn study() -> &'static [FleetStudyRow] {
        static STUDY: OnceLock<Vec<FleetStudyRow>> = OnceLock::new();
        STUDY.get_or_init(|| fleet_study(TEST_JOBS_PER_NODE).unwrap())
    }

    #[test]
    fn study_is_deterministic() {
        let a = study();
        let b = fleet_study(TEST_JOBS_PER_NODE).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest, y.digest, "{:?}/{:?}", x.placement, x.policy);
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.strict_p99.to_bits(), y.strict_p99.to_bits());
        }
    }

    #[test]
    fn every_cell_conserves_jobs() {
        for row in study() {
            assert_eq!(
                row.stats.jobs + row.stats.rejected,
                row.nodes * TEST_JOBS_PER_NODE,
                "{} nodes {:?}/{:?} lost jobs",
                row.nodes,
                row.placement,
                row.policy
            );
        }
    }

    #[test]
    fn placement_policies_actually_differ_at_scale() {
        // At 16 nodes the three placement policies must make genuinely
        // different decisions — identical digests would mean the sweep
        // compares a policy against itself.
        let digests: std::collections::BTreeSet<u64> = study()
            .iter()
            .filter(|r| r.nodes == 16 && r.policy == Policy::Fifo)
            .map(|r| r.digest)
            .collect();
        assert_eq!(digests.len(), 3, "placement digests collide: {digests:?}");
    }

    /// The study's headline claim: packing strict rings tightly
    /// (best-fit-hbw) beats spreading them (least-loaded) on strict-HBW
    /// p99 at the largest fleet, because spreading fragments the 16 GiB
    /// nodes' headroom that strict batch elephants need. The effect is a
    /// congestion one — on a cold fleet spreading is free — so this test
    /// runs its own two cells at the CSV sweep's scale, long enough for
    /// queue buildup to dominate the warmup transient. The release bin
    /// re-asserts the claim on the million-job trace.
    #[test]
    fn best_fit_beats_least_loaded_on_strict_p99() {
        let nodes = 16;
        let trace = study_trace(nodes, CSV_JOBS_PER_NODE);
        let p99 = |placement| {
            let cfg = fleet_config(nodes, placement, Policy::Fifo);
            fleet_serve(&cfg, &trace).unwrap().strict_p99
        };
        let best = p99(PlacementPolicy::BestFitHbw);
        let spread = p99(PlacementPolicy::LeastLoaded);
        assert!(
            best < spread,
            "best-fit strict p99 {best} >= least-loaded {spread}"
        );
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let report = FleetBenchReport {
            bench: "fleet".into(),
            unit: "jobs/sec".into(),
            nodes: 16,
            jobs_per_node: 62_500,
            total_jobs: 1_000_000,
            cells: vec![FleetBenchCell {
                placement: "best-fit-hbw".into(),
                jobs: 999_000,
                rejected: 1_000,
                wall_secs: 10.0,
                jobs_per_sec: 100_000.0,
                strict_p99: 42.5,
                steals: 17,
                digest: "0x0123456789abcdef".into(),
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes, 16);
        assert_eq!(back.cells[0].digest, "0x0123456789abcdef");
    }
}
