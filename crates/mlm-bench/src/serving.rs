//! The serving study: sweep arrival rate × scheduling policy × MCDRAM
//! budget over a seeded heavy-tailed trace and report fleet latency
//! statistics per cell.
//!
//! This is the multi-tenant follow-on to the paper's single-job tables:
//! once several pipelines share one node, the broker's MCDRAM budget and
//! the admission policy — not the per-job thread split — dominate tail
//! latency. The study shows the two qualitative effects the serving layer
//! exists to produce: weighted fair-share beats FIFO on p99 latency (no
//! head-of-line blocking behind batch elephants), and SJF beats FIFO on
//! mean latency (short jobs drain first), both at high arrival rates.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::GIB;
use mlm_serve::{heavy_tailed_trace, serve, FleetStats, Policy, ServeConfig, TraceConfig};

/// Jobs per trace cell.
pub const SERVE_JOBS: usize = 600;

/// Trace seed; every run of the study is bit-for-bit deterministic.
pub const SERVE_SEED: u64 = 0x5eed_cafe;

/// Offered load sweep (jobs/s): light, moderate, and heavy enough that
/// broker capacity — not the buses — is the bottleneck, so admission
/// order matters.
pub const ARRIVAL_RATES: [f64; 3] = [1.0, 3.0, 5.0];

/// MCDRAM broker budgets (GiB): half the node, and the full 16 GiB.
pub const BUDGETS_GIB: [u64; 2] = [8, 16];

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServeStudyRow {
    /// Offered arrival rate (jobs/s).
    pub arrival_rate: f64,
    /// Admission policy.
    pub policy: Policy,
    /// Broker MCDRAM budget (GiB).
    pub budget_gib: u64,
    /// Fleet statistics for the cell.
    pub stats: FleetStats,
}

/// Run the full sweep on the paper's KNL 7250 in flat mode.
pub fn serve_study() -> Result<Vec<ServeStudyRow>, String> {
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let mut rows = Vec::new();
    for &rate in &ARRIVAL_RATES {
        let mut tc = TraceConfig::new(machine.clone(), SERVE_JOBS, rate, SERVE_SEED);
        // Elephants rare enough that the fleet p99 measures head-of-line
        // *victims*, not the elephants' own multi-second service times,
        // and ring sizes that let standard jobs co-reside with an
        // elephant under the tight budget (so fair-share's reordering
        // does not itself manufacture a starved tail).
        tc.batch_frac = 0.005;
        tc.interactive_chunk = GIB / 4;
        tc.standard_chunk = GIB / 2;
        tc.batch_chunk = GIB;
        let trace = heavy_tailed_trace(&tc);
        for &budget_gib in &BUDGETS_GIB {
            for &policy in &Policy::ALL {
                let mut cfg = ServeConfig::new(machine.clone());
                cfg.policy = policy;
                cfg.mcdram_budget = budget_gib << 30;
                let out = serve(&cfg, &trace)?;
                rows.push(ServeStudyRow {
                    arrival_rate: rate,
                    policy,
                    budget_gib,
                    stats: out.fleet,
                });
            }
        }
    }
    Ok(rows)
}

/// Find the cell for (rate, policy, budget); panics if the sweep lacks it.
pub fn cell(rows: &[ServeStudyRow], rate: f64, policy: Policy, budget_gib: u64) -> &ServeStudyRow {
    rows.iter()
        .find(|r| r.arrival_rate == rate && r.policy == policy && r.budget_gib == budget_gib)
        .expect("sweep cell missing")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static [ServeStudyRow] {
        static STUDY: OnceLock<Vec<ServeStudyRow>> = OnceLock::new();
        STUDY.get_or_init(|| serve_study().unwrap())
    }

    #[test]
    fn study_is_deterministic() {
        let a = study();
        let b = serve_study().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.stats, y.stats,
                "{:?} {} differs",
                x.policy, x.arrival_rate
            );
        }
    }

    #[test]
    fn reservations_never_exceed_budget() {
        for row in study() {
            assert!(
                row.stats.mcdram_high_water <= row.budget_gib << 30,
                "{:?} @ {} jobs/s: hwm {} > budget {} GiB",
                row.policy,
                row.arrival_rate,
                row.stats.mcdram_high_water,
                row.budget_gib
            );
        }
    }

    #[test]
    fn every_cell_completes_every_admissible_job() {
        for row in study() {
            assert_eq!(
                row.stats.jobs + row.stats.rejected,
                SERVE_JOBS,
                "{:?} @ {} jobs/s lost jobs",
                row.policy,
                row.arrival_rate
            );
        }
    }

    // The paper-style claims live in the *tight-budget* column: with the
    // full 16 GiB nearly everything co-resides and the policies converge,
    // which the sweep shows rather than hides.

    #[test]
    fn fair_share_beats_fifo_on_tail_latency_under_load() {
        let rows = study();
        let top = *ARRIVAL_RATES.last().unwrap();
        let tight = BUDGETS_GIB[0];
        let fifo = cell(rows, top, Policy::Fifo, tight);
        let fair = cell(rows, top, Policy::FairShare, tight);
        assert!(
            fair.stats.p99_latency < fifo.stats.p99_latency,
            "fair p99 {} >= fifo p99 {}",
            fair.stats.p99_latency,
            fifo.stats.p99_latency
        );
    }

    #[test]
    fn sjf_beats_fifo_on_mean_latency_under_load() {
        let rows = study();
        let top = *ARRIVAL_RATES.last().unwrap();
        let tight = BUDGETS_GIB[0];
        let fifo = cell(rows, top, Policy::Fifo, tight);
        let sjf = cell(rows, top, Policy::Sjf, tight);
        assert!(
            sjf.stats.mean_latency < fifo.stats.mean_latency,
            "sjf mean {} >= fifo mean {}",
            sjf.stats.mean_latency,
            fifo.stats.mean_latency
        );
    }
}
