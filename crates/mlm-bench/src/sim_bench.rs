//! Throughput benchmark for the knl-sim event engine.
//!
//! Builds synthetic many-thread/many-op programs at several scales, runs
//! them through both the optimized event-queue engine ([`Simulator::run`])
//! and the preserved naive reference loop
//! ([`Simulator::run_reference`]), and reports events/sec. The `sim_bench`
//! binary serializes the results to `BENCH_sim_engine.json`, the repo's
//! tracked perf trajectory for the DES core; the CI `sim-bench` job warns
//! (without failing) when throughput regresses by more than 20%.
//!
//! The *event* unit is engine-independent so the two engines' events/sec
//! are directly comparable: every op contributes one start and one
//! completion, i.e. `events = 2 × ops`. Speedup in events/sec therefore
//! equals wall-clock speedup on the same program.

use std::time::Instant;

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::ops::{OpKind, Place, Program};
use knl_sim::{EngineStats, Simulator, GB};
use serde::{Deserialize, Serialize};

/// A synthetic workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Independent copies of varied sizes on every thread: completions
    /// stagger, so every event changes the active set and re-arbitrates —
    /// the quadratic worst case for the naive loop.
    Fanout,
    /// Three-stage copy-in → compute → copy-out chains over thread
    /// triples, barriered every round: the paper's pipeline shape.
    Pipeline,
    /// Zero-delay barrier cascades between tiny delays: stresses the
    /// ready worklist and instant-op path with almost no flows.
    BarrierStorm,
    /// A single dependency chain round-robining across every thread: at
    /// most one op runs at a time, so per-event cost is pure dispatch.
    /// The naive loop pays a full all-thread rescan per event here; the
    /// ready worklist makes each wake-up O(log threads).
    Chain,
    /// The out-of-core stencil dataflow shape from the generic plan
    /// layer: per 3-thread lane, a 4-slot ring with no barriers at all —
    /// each compute fans in from three staged neighbours (the halo
    /// edges) and each stage-in recycles against three downstream
    /// computes, so readiness propagates through dependency counts
    /// alone, never through barrier sweeps.
    Stencil,
}

impl Family {
    /// Stable lowercase name used in JSON and scale labels.
    pub fn name(self) -> &'static str {
        match self {
            Family::Fanout => "fanout",
            Family::Pipeline => "pipeline",
            Family::BarrierStorm => "barrier-storm",
            Family::Chain => "chain",
            Family::Stencil => "stencil",
        }
    }
}

/// Build a synthetic program of `threads` threads and roughly
/// `ops_per_thread` ops each. Deterministic: same inputs, same program.
pub fn build_program(family: Family, threads: usize, ops_per_thread: usize) -> Program {
    match family {
        Family::Fanout => {
            let mut p = Program::new(threads);
            for t in 0..threads {
                for k in 0..ops_per_thread {
                    // Vary sizes so completions stagger (no coalescing).
                    let bytes = 50_000_000 + 1_000_000 * ((t * 7 + k * 13) % 97) as u64;
                    p.push(
                        t,
                        OpKind::copy(Place::Ddr, Place::Mcdram, bytes, 4.8 * GB),
                        &[],
                    );
                }
            }
            p
        }
        Family::Pipeline => {
            let triples = (threads / 3).max(1);
            let rounds = ops_per_thread;
            let mut p = Program::new(3 * triples);
            let mut prev = Vec::new();
            for r in 0..rounds {
                let mut ids = Vec::new();
                for g in 0..triples {
                    let bytes = 20_000_000 + 1_000_000 * ((g * 11 + r * 5) % 53) as u64;
                    let a = p.push(
                        3 * g,
                        OpKind::copy(Place::Ddr, Place::Mcdram, bytes, 4.8 * GB),
                        &prev,
                    );
                    let b = p.push(
                        3 * g + 1,
                        OpKind::inplace_pass(Place::Mcdram, bytes, 6.78 * GB),
                        &[a],
                    );
                    let c = p.push(
                        3 * g + 2,
                        OpKind::copy(Place::Mcdram, Place::Ddr, bytes, 4.8 * GB),
                        &[b],
                    );
                    ids.push(c);
                }
                prev = p.barrier(0..3 * triples, &ids);
            }
            p
        }
        Family::BarrierStorm => {
            let mut p = Program::new(threads);
            let rounds = ops_per_thread / 2;
            let mut deps = Vec::new();
            for r in 0..rounds.max(1) {
                deps = p.barrier(0..threads, &deps);
                if r % 8 == 0 {
                    // An occasional real delay so time advances.
                    let d = p.push(0, OpKind::Delay { seconds: 1e-3 }, &deps);
                    deps = vec![d];
                }
            }
            p
        }
        Family::Chain => {
            let mut p = Program::new(threads);
            let mut prev = Vec::new();
            for k in 0..threads * ops_per_thread {
                let bytes = 1_000_000 + 100_000 * ((k * 17) % 41) as u64;
                let id = p.push(
                    k % threads,
                    OpKind::copy(Place::Ddr, Place::Mcdram, bytes, 4.8 * GB),
                    &prev,
                );
                prev = vec![id];
            }
            p
        }
        Family::Stencil => {
            // One 4-slot ring per 3-thread lane, mirroring the shape
            // `mlm_exec::plan::plan_pipeline` emits for Workload::Stencil:
            // compute c reads the staged chunks c-1..=c+1 (halo fan-in),
            // copy-out c waits only on compute c, and stage-in c recycles
            // its slot against the three computes that read chunk c-4.
            let lanes = (threads / 3).max(1);
            let chunks = ops_per_thread.max(1);
            let ring = 4usize;
            let mut p = Program::new(3 * lanes);
            for g in 0..lanes {
                let mut stage_in: Vec<knl_sim::OpId> = Vec::with_capacity(chunks);
                let mut compute: Vec<knl_sim::OpId> = Vec::with_capacity(chunks);
                // Issue compute c (its left and right neighbours are
                // staged by now) plus its trailing copy-out.
                let emit_compute = |p: &mut Program, stage_in: &[knl_sim::OpId], c: usize| {
                    let deps: Vec<knl_sim::OpId> =
                        stage_in[c.saturating_sub(1)..=(c + 1).min(chunks - 1)].to_vec();
                    let bytes = 20_000_000 + 1_000_000 * ((g * 11 + c * 7) % 53) as u64;
                    // Interior chunks re-read two halos on top of the body.
                    let neighbours = usize::from(c > 0) + usize::from(c + 1 < chunks);
                    let traffic = bytes + (neighbours as u64) * (bytes / 16);
                    let k = p.push(
                        3 * g + 1,
                        OpKind::inplace_pass(Place::Mcdram, traffic, 6.78 * GB),
                        &deps,
                    );
                    p.push(
                        3 * g + 2,
                        OpKind::copy(Place::Mcdram, Place::Ddr, bytes, 4.8 * GB),
                        &[k],
                    );
                    k
                };
                for c in 0..chunks {
                    let recycled: Vec<knl_sim::OpId> = if c >= ring {
                        // Slot c % 4 frees once every compute reading
                        // chunk c-4's buffer (as body or halo) is done.
                        compute[(c - ring).saturating_sub(1)..=(c - ring + 1).min(chunks - 1)]
                            .to_vec()
                    } else {
                        Vec::new()
                    };
                    let bytes = 20_000_000 + 1_000_000 * ((g * 11 + c * 7) % 53) as u64;
                    stage_in.push(p.push(
                        3 * g,
                        OpKind::copy(Place::Ddr, Place::Mcdram, bytes, 4.8 * GB),
                        &recycled,
                    ));
                    if c >= 1 {
                        compute.push(emit_compute(&mut p, &stage_in, c - 1));
                    }
                }
                compute.push(emit_compute(&mut p, &stage_in, chunks - 1));
            }
            p
        }
    }
}

/// One measured (family, scale) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Scale label, e.g. `fanout-256x100`.
    pub name: String,
    pub family: String,
    pub threads: usize,
    /// Total ops in the program.
    pub ops: usize,
    /// Engine-independent event count (2 × ops: one start + one
    /// completion per op).
    pub events: u64,
    /// Best-of-N wall seconds for the optimized engine.
    pub optimized_secs: f64,
    pub optimized_events_per_sec: f64,
    /// Best-of-N wall seconds for the naive reference loop.
    pub reference_secs: f64,
    pub reference_events_per_sec: f64,
    /// `reference_secs / optimized_secs` (== events/sec ratio).
    pub speedup: f64,
    /// Optimized-engine internals at this scale (timeline events, rate
    /// epochs, stale heap entries, heap high-water mark).
    pub timeline_events: u64,
    pub rate_recomputes: u64,
    pub stale_events: u64,
    pub heap_peak: usize,
}

/// Latency of the static schedule verifier (`mlm_exec::graph`) on the
/// largest committed experiment spec — the preflight gate in front of
/// `drive()` must stay well under its 100 ms budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphVerifyMeasurement {
    /// Name of the spec measured (from the committed catalog).
    pub spec: String,
    /// Chunks in the pipeline.
    pub chunks: usize,
    /// Nodes in the emitted dependency graph.
    pub nodes: usize,
    /// Edges in the emitted dependency graph.
    pub edges: usize,
    /// Best-of-N wall milliseconds for record + full analysis.
    pub best_millis: f64,
    /// The verifier must also *prove* the spec safe, not just terminate.
    pub safe: bool,
}

/// The whole benchmark report, serialized to `BENCH_sim_engine.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    pub bench: String,
    pub unit: String,
    pub scales: Vec<Measurement>,
    /// Speedup at the largest (last) scale — the tracked acceptance
    /// number (must stay ≥ 5×).
    pub largest_scale_speedup: f64,
    /// Static-verifier latency on the largest committed spec (tracked
    /// acceptance: < 100 ms and `safe`).
    pub graph_verify: GraphVerifyMeasurement,
}

/// The benchmark grid: (family, threads, ops_per_thread), smallest to
/// largest. The last entry is "the largest scale" for the tracked
/// speedup number.
pub fn default_scales() -> Vec<(Family, usize, usize)> {
    vec![
        (Family::BarrierStorm, 64, 100),
        (Family::Pipeline, 48, 60),
        (Family::Fanout, 16, 50),
        (Family::Fanout, 64, 100),
        (Family::Fanout, 256, 100),
        (Family::Stencil, 48, 60),
        (Family::Chain, 256, 200),
    ]
}

fn knl() -> MachineConfig {
    MachineConfig::knl_7250(MemMode::Flat)
}

fn time_best<F: FnMut() -> f64>(iters: usize, mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut makespan = 0.0;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        makespan = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, makespan)
}

/// Measure one (family, scale) cell: build the program, run both engines
/// (best-of-N wall time), cross-check that they agree on the makespan,
/// and return the filled [`Measurement`].
///
/// # Panics
/// Panics if the two engines disagree on the makespan beyond 1e-9
/// relative — a correctness failure, not a perf regression.
pub fn measure(family: Family, threads: usize, ops_per_thread: usize) -> Measurement {
    let prog = build_program(family, threads, ops_per_thread);
    let sim = Simulator::new(knl());
    let ops = prog.ops().len();
    let events = 2 * ops as u64;

    // Warm-up + stats in one go.
    let (_, stats): (_, EngineStats) = sim.run_stats(&prog).expect("valid program");

    let opt_iters = 5;
    let ref_iters = 2;
    let (optimized_secs, opt_makespan) = time_best(opt_iters, || {
        sim.run(&prog).expect("valid program").makespan
    });
    let (reference_secs, ref_makespan) = time_best(ref_iters, || {
        sim.run_reference(&prog).expect("valid program").makespan
    });

    let tol = 1e-9 * ref_makespan.abs().max(1.0);
    assert!(
        (opt_makespan - ref_makespan).abs() <= tol,
        "{} engines disagree: optimized={opt_makespan} reference={ref_makespan}",
        family.name()
    );

    Measurement {
        name: format!("{}-{}x{}", family.name(), threads, ops_per_thread),
        family: family.name().to_string(),
        threads,
        ops,
        events,
        optimized_secs,
        optimized_events_per_sec: events as f64 / optimized_secs,
        reference_secs,
        reference_events_per_sec: events as f64 / reference_secs,
        speedup: reference_secs / optimized_secs,
        timeline_events: stats.events,
        rate_recomputes: stats.rate_recomputes,
        stale_events: stats.stale_events,
        heap_peak: stats.heap_peak,
    }
}

/// Time the static schedule verifier end-to-end (record the graph +
/// full G001–G006 analysis) on the largest committed experiment spec,
/// best of 5, against the paper machine's MCDRAM budget.
pub fn measure_graph_verify() -> GraphVerifyMeasurement {
    let (name, spec) = mlm_verify::graph::largest_committed_spec();
    let machine = knl();
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..5 {
        let t0 = Instant::now();
        let r = mlm_verify::graph::graph_report_for(&spec, &machine)
            .expect("committed spec must be driveable");
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("five iterations ran");
    GraphVerifyMeasurement {
        spec: name.to_string(),
        chunks: spec.n_chunks(),
        nodes: report.nodes,
        edges: report.edges,
        best_millis: best * 1e3,
        safe: report.is_safe(),
    }
}

/// Run the full default grid and assemble the report.
pub fn run_all() -> BenchReport {
    let mut scales = Vec::new();
    for (family, threads, ops) in default_scales() {
        scales.push(measure(family, threads, ops));
    }
    let largest_scale_speedup = scales.last().map(|m| m.speedup).unwrap_or(0.0);
    BenchReport {
        bench: "sim_engine".to_string(),
        unit: "events/sec".to_string(),
        scales,
        largest_scale_speedup,
        graph_verify: measure_graph_verify(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_programs() {
        for family in [
            Family::Fanout,
            Family::Pipeline,
            Family::BarrierStorm,
            Family::Chain,
            Family::Stencil,
        ] {
            let p = build_program(family, 12, 10);
            p.validate().expect("builder output must validate");
            assert!(!p.ops().is_empty());
            let r = Simulator::new(knl()).run(&p).expect("must execute");
            assert!(r.ops_executed == p.ops().len());
        }
    }

    #[test]
    fn stencil_family_is_barrier_free_dataflow() {
        // 4 lanes x (10 stage-ins + 10 computes + 10 copy-outs); a
        // barrier would add ops beyond the 3-per-chunk dataflow shape.
        let p = build_program(Family::Stencil, 12, 10);
        assert_eq!(p.ops().len(), 4 * 30);
        p.validate().expect("stencil ring must validate");
        // measure() cross-checks the optimized engine against the
        // reference loop, so the halo fan-in prices identically on both.
        let m = measure(Family::Stencil, 12, 10);
        assert!(m.speedup > 0.0);
    }

    #[test]
    fn engines_agree_at_small_scale() {
        // The measure() cross-check at a size cheap enough for `cargo
        // test`; the full grid runs in the sim_bench binary.
        let m = measure(Family::Fanout, 8, 6);
        assert!(m.speedup > 0.0);
        assert_eq!(m.ops, 48);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            bench: "sim_engine".into(),
            unit: "events/sec".into(),
            scales: vec![],
            largest_scale_speedup: 7.25,
            graph_verify: GraphVerifyMeasurement {
                spec: "serve-batch-elephant".into(),
                chunks: 128,
                nodes: 514,
                edges: 767,
                best_millis: 1.5,
                safe: true,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.bench, "sim_engine");
        assert_eq!(back.largest_scale_speedup, 7.25);
        assert_eq!(back.graph_verify.chunks, 128);
        assert!(back.graph_verify.safe);
    }

    #[test]
    fn graph_verify_is_fast_and_proves_the_largest_spec() {
        let m = measure_graph_verify();
        assert!(m.safe, "{}: largest committed spec must prove safe", m.spec);
        assert!(m.nodes > 0 && m.edges > 0);
        // The hard acceptance gate is < 100 ms in the release-mode
        // sim_bench binary; leave debug-mode `cargo test` headroom.
        assert!(
            m.best_millis < 2_000.0,
            "{}: static verification took {:.1} ms",
            m.spec,
            m.best_millis
        );
    }
}
