//! Property-based tests for the simulator substrate.

use knl_sim::bandwidth::{allocate_rates, FlowSpec};
use knl_sim::cache::DirectMappedCache;
use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::ops::{OpKind, Place, Program};
use knl_sim::Simulator;
use proptest::prelude::*;

fn arb_flow(resources: usize) -> impl Strategy<Value = FlowSpec> {
    let demand = proptest::collection::vec((0..resources, 0.1f64..4.0), 0..=resources.min(3))
        .prop_map(|mut pairs| {
            // A resource may appear at most once per flow.
            pairs.sort_by_key(|&(r, _)| r);
            pairs.dedup_by_key(|&mut (r, _)| r);
            pairs
        });
    let cap = prop_oneof![(0.5f64..100.0).boxed(), Just(f64::INFINITY).boxed(),];
    (demand, cap).prop_map(|(demand, cap)| FlowSpec { demand, cap })
}

proptest! {
    /// Feasibility: the allocation never oversubscribes a resource and
    /// never exceeds a flow's cap.
    #[test]
    fn allocation_is_feasible(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..4),
        flows in proptest::collection::vec(arb_flow(3), 0..20),
    ) {
        let flows: Vec<FlowSpec> = flows
            .into_iter()
            .map(|mut f| {
                f.demand.retain(|&(r, _)| r < caps.len());
                f
            })
            .collect();
        let rates = allocate_rates(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r >= 0.0);
            prop_assert!(r <= f.cap * (1.0 + 1e-9) || f.cap.is_infinite());
        }
        for (res, &c) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .map(|(f, &r)| {
                    f.demand
                        .iter()
                        .find(|&&(fr, _)| fr == res)
                        .map_or(0.0, |&(_, coeff)| r * coeff)
                })
                .sum();
            prop_assert!(used <= c * (1.0 + 1e-6), "resource {res}: used {used} > cap {c}");
        }
    }

    /// Work conservation: if every flow got less than its cap, at least one
    /// resource it uses must be (nearly) saturated.
    #[test]
    fn allocation_is_work_conserving(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..3),
        flows in proptest::collection::vec(arb_flow(2), 1..12),
    ) {
        let flows: Vec<FlowSpec> = flows
            .into_iter()
            .map(|mut f| {
                f.demand.retain(|&(r, _)| r < caps.len());
                f
            })
            .collect();
        let rates = allocate_rates(&caps, &flows);
        let mut used = vec![0.0f64; caps.len()];
        for (f, &r) in flows.iter().zip(&rates) {
            for &(res, coeff) in &f.demand {
                used[res] += r * coeff;
            }
        }
        for (f, &r) in flows.iter().zip(&rates) {
            if f.demand.is_empty() {
                continue;
            }
            let at_cap = f.cap.is_finite() && r >= f.cap * (1.0 - 1e-6);
            let bottlenecked = f
                .demand
                .iter()
                .any(|&(res, _)| used[res] >= caps[res] * (1.0 - 1e-6));
            prop_assert!(
                at_cap || bottlenecked,
                "flow neither capped nor bottlenecked: rate {r}, cap {}", f.cap
            );
        }
    }

    /// Identical flows receive identical rates (fairness symmetry).
    #[test]
    fn identical_flows_get_identical_rates(
        n in 1usize..30,
        cap in 0.5f64..50.0,
        resource_cap in 1.0f64..500.0,
    ) {
        let flows: Vec<FlowSpec> =
            (0..n).map(|_| FlowSpec::single(0, 1.0, cap)).collect();
        let rates = allocate_rates(&[resource_cap], &flows);
        for w in rates.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9);
        }
        let agg: f64 = rates.iter().sum();
        let expect = (n as f64 * cap).min(resource_cap);
        prop_assert!((agg - expect).abs() < 1e-6 * expect.max(1.0));
    }

    /// Cache conservation: hit + miss bytes equal accessed bytes, and the
    /// hit rate is a valid fraction.
    #[test]
    fn cache_byte_conservation(
        accesses in proptest::collection::vec(
            (0u64..1 << 16, 1u64..1 << 14, any::<bool>()), 1..60),
        sets in 1u64..32,
    ) {
        let seg = 1024;
        let mut c = DirectMappedCache::new(sets * seg, seg);
        for (addr, bytes, write) in accesses {
            let t = c.access(addr, bytes, write);
            // Per-access conservation: every accessed byte is a hit or miss.
            // (Write misses are counted as MCDRAM "hit_bytes" traffic but
            // stats record them as misses.)
            let _ = t;
        }
        let s = c.stats();
        prop_assert_eq!(s.hit_bytes + s.miss_bytes, s.accessed_bytes);
        let hr = s.hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
    }

    /// Residency: any range just accessed is resident afterwards if it fits
    /// entirely in the cache without self-aliasing.
    #[test]
    fn recently_accessed_small_range_is_resident(
        start_seg in 0u64..128,
        len_segs in 1u64..8,
    ) {
        let seg = 512;
        let sets = 8u64;
        prop_assume!(len_segs <= sets);
        // A contiguous range of <= sets segments never self-aliases.
        let mut c = DirectMappedCache::new(sets * seg, seg);
        let addr = start_seg * seg;
        let bytes = len_segs * seg;
        c.access(addr, bytes, false);
        prop_assert!(c.is_resident(addr, bytes));
    }

    /// Engine sanity: a batch of independent copies always finishes, the
    /// makespan is at least the best-case bound (all threads at full cap,
    /// no bus limits) and at most the serial bound.
    #[test]
    fn engine_makespan_within_bounds(
        n_threads in 1usize..12,
        gb_each in 1u64..8,
    ) {
        let cfg = MachineConfig::tiny(MemMode::Flat);
        let bytes = gb_each * 100_000_000; // 0.1 GB units keep runtimes tiny
        let mut p = Program::new(n_threads);
        for t in 0..n_threads {
            p.push(t, OpKind::copy(Place::Ddr, Place::Mcdram, bytes, cfg.per_thread_copy_bw), &[]);
        }
        let r = Simulator::new(cfg.clone()).run(&p).unwrap();
        let per_thread = bytes as f64 / cfg.per_thread_copy_bw;
        let serial = per_thread * n_threads as f64;
        prop_assert!(r.makespan >= per_thread * (1.0 - 1e-9));
        prop_assert!(r.makespan <= serial * (1.0 + 1e-9));
        // Traffic accounting is exact.
        prop_assert_eq!(r.traffic_on(knl_sim::MemLevel::Ddr).read, bytes * n_threads as u64);
        prop_assert_eq!(r.traffic_on(knl_sim::MemLevel::Mcdram).written, bytes * n_threads as u64);
    }

    /// Determinism: running the same program twice yields identical reports.
    #[test]
    fn engine_is_deterministic(
        n_threads in 1usize..6,
        chunks in 1usize..4,
    ) {
        let cfg = MachineConfig::tiny(MemMode::Cache);
        let mut p = Program::new(n_threads);
        let mut deps = Vec::new();
        for c in 0..chunks {
            let mut step = Vec::new();
            for t in 0..n_threads {
                step.push(p.push(
                    t,
                    OpKind::Stream {
                        accesses: vec![knl_sim::Access::read(
                            Place::CachedDdr { addr: (c * n_threads + t) as u64 * (8 << 20) },
                            4 << 20,
                        )],
                        rate_cap: cfg.per_thread_compute_bw,
                    },
                    &deps,
                ));
            }
            deps = p.barrier(0..n_threads, &step);
        }
        let sim = Simulator::new(cfg);
        let a = sim.run(&p).unwrap();
        let b = sim.run(&p).unwrap();
        prop_assert_eq!(a, b);
    }
}
