//! Scenario tests for the engine: schedules and machine behaviours that
//! combine several features (cache + dependencies + arbitration) the unit
//! tests cover only in isolation.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::ops::{Access, OpKind, Place, Program};
use knl_sim::{MemLevel, Simulator, GB};

fn tiny_flat() -> MachineConfig {
    MachineConfig::tiny(MemMode::Flat)
}

fn tiny_cache() -> MachineConfig {
    let mut c = MachineConfig::tiny(MemMode::Cache);
    c.cache_mode_efficiency = 1.0;
    c
}

/// A classic producer/consumer chain across three threads: copy-in feeds
/// compute feeds copy-out; total time is the sum because nothing overlaps.
#[test]
fn three_stage_chain_serializes() {
    let cfg = tiny_flat();
    let bytes = 1_000_000_000u64;
    let mut p = Program::new(3);
    let a = p.push(
        0,
        OpKind::copy(Place::Ddr, Place::Mcdram, bytes, 1.0 * GB),
        &[],
    );
    let b = p.push(
        1,
        OpKind::inplace_pass(Place::Mcdram, bytes, 2.0 * GB),
        &[a],
    );
    p.push(
        2,
        OpKind::copy(Place::Mcdram, Place::Ddr, bytes, 1.0 * GB),
        &[b],
    );
    let r = Simulator::new(cfg).run(&p).unwrap();
    // 1.0 + 1.0 + 1.0 seconds.
    assert!((r.makespan - 3.0).abs() < 1e-9, "{}", r.makespan);
    assert_eq!(r.traffic_on(MemLevel::Ddr).read, bytes);
    assert_eq!(r.traffic_on(MemLevel::Ddr).written, bytes);
    assert_eq!(r.traffic_on(MemLevel::Mcdram).total(), 4 * bytes);
}

/// Diamond dependencies: one source fans out to two workers that join at
/// a sink; the sink starts only after the slower branch.
#[test]
fn diamond_dependency_joins_on_the_slower_branch() {
    let cfg = tiny_flat();
    let mut p = Program::new(4);
    let src = p.push(0, OpKind::Delay { seconds: 0.5 }, &[]);
    let fast = p.push(1, OpKind::Delay { seconds: 0.25 }, &[src]);
    let slow = p.push(2, OpKind::Delay { seconds: 1.0 }, &[src]);
    p.push(3, OpKind::Delay { seconds: 0.25 }, &[fast, slow]);
    let r = Simulator::new(cfg).run(&p).unwrap();
    assert!((r.makespan - 1.75).abs() < 1e-12);
}

/// Rates re-arbitrate when flows finish: a lone flow speeds up once its
/// competitors drain.
#[test]
fn rates_rebalance_after_completions() {
    let cfg = tiny_flat(); // DDR 10 GB/s
    let mut p = Program::new(2);
    // Two uncapped DDR streams: share 5 GB/s each. The short one finishes,
    // then the long one gets the full 10 GB/s.
    p.push(
        0,
        OpKind::Stream {
            accesses: vec![Access::read(Place::Ddr, 5_000_000_000)],
            rate_cap: 1e15,
        },
        &[],
    );
    p.push(
        1,
        OpKind::Stream {
            accesses: vec![Access::read(Place::Ddr, 15_000_000_000)],
            rate_cap: 1e15,
        },
        &[],
    );
    let r = Simulator::new(cfg).run(&p).unwrap();
    // Phase 1: both at 5 GB/s for 1 s (short one done, long has 10 GB left).
    // Phase 2: long one alone at 10 GB/s for 1 s. Total 2 s.
    assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
    assert!(r.utilization[0] > 0.999);
}

/// Cache-mode round trip: write a range (dirty), evict it with an aliased
/// range, and observe the writeback on the DDR ledger.
#[test]
fn dirty_eviction_reaches_the_ddr_ledger() {
    let cfg = tiny_cache(); // 64 MiB cache
    let cache_sz: u64 = 64 << 20;
    let mut p = Program::new(1);
    let w = p.push(
        0,
        OpKind::Stream {
            accesses: vec![Access::write(Place::CachedDdr { addr: 0 }, cache_sz)],
            rate_cap: 1e15,
        },
        &[],
    );
    // Aliased read: same sets, different tags.
    p.push(
        0,
        OpKind::Stream {
            accesses: vec![Access::read(Place::CachedDdr { addr: cache_sz }, cache_sz)],
            rate_cap: 1e15,
        },
        &[w],
    );
    let r = Simulator::new(cfg).run(&p).unwrap();
    assert_eq!(
        r.traffic_on(MemLevel::Ddr).written,
        cache_sz,
        "writeback of dirty data"
    );
    assert_eq!(
        r.traffic_on(MemLevel::Ddr).read,
        cache_sz,
        "miss fill of aliased range"
    );
    assert_eq!(r.cache.writeback_bytes, cache_sz);
}

/// In hybrid mode, flat-MCDRAM buffers and cached-DDR traffic contend on
/// the same (efficiency-degraded) MCDRAM bus.
#[test]
fn hybrid_shares_one_mcdram_bus() {
    let mut cfg = MachineConfig::tiny(MemMode::Hybrid {
        cache_fraction: 0.5,
    });
    cfg.cache_mode_efficiency = 0.5; // make the degradation visible: 20 GB/s
    let bytes = 2_000_000_000u64;
    let mut p = Program::new(2);
    p.push(
        0,
        OpKind::Stream {
            accesses: vec![Access::read(Place::Mcdram, bytes)],
            rate_cap: 1e15,
        },
        &[],
    );
    p.push(
        1,
        OpKind::Stream {
            accesses: vec![Access::read(Place::Mcdram, bytes)],
            rate_cap: 1e15,
        },
        &[],
    );
    let r = Simulator::new(cfg).run(&p).unwrap();
    // 4 GB over a 20 GB/s bus shared by two uncapped flows.
    assert!((r.makespan - 0.2).abs() < 1e-9, "{}", r.makespan);
}

/// Per-miss latency penalties serialize with the thread but overlap across
/// threads.
#[test]
fn miss_penalties_overlap_across_threads() {
    let mut cfg = tiny_cache();
    cfg.cache_miss_penalty = 0.01; // 10 ms per 1 MiB segment
    let seg: u64 = 1 << 20;
    let mut p = Program::new(2);
    for t in 0..2 {
        p.push(
            t,
            OpKind::Stream {
                accesses: vec![Access::read(
                    Place::CachedDdr {
                        addr: t as u64 * 4 * seg,
                    },
                    4 * seg,
                )],
                rate_cap: 1e15,
            },
            &[],
        );
    }
    let r = Simulator::new(cfg).run(&p).unwrap();
    // Each thread: transfer (~negligible) + 4 x 10 ms penalty; concurrent.
    assert!(r.makespan >= 0.04 && r.makespan < 0.05, "{}", r.makespan);
}

/// An op may mix places: a merge reading MCDRAM and writing cached DDR
/// charges both ledgers consistently.
#[test]
fn mixed_place_stream_charges_both_ledgers() {
    let cfg = MachineConfig::knl_7250(MemMode::Hybrid {
        cache_fraction: 0.5,
    });
    let bytes = 1_000_000_000u64;
    let mut p = Program::new(1);
    p.push(
        0,
        OpKind::Stream {
            accesses: vec![
                Access::read(Place::Mcdram, bytes),
                Access::write(Place::CachedDdr { addr: 0 }, bytes),
            ],
            rate_cap: 2.0 * GB,
        },
        &[],
    );
    let r = Simulator::new(cfg).run(&p).unwrap();
    // Logical bytes = 2 GB at 2 GB/s cap.
    assert!((r.makespan - 1.0).abs() < 1e-9);
    assert_eq!(r.traffic_on(MemLevel::Mcdram).read, bytes);
    // The cached write allocates in MCDRAM (write-allocate, no fill read).
    assert_eq!(r.traffic_on(MemLevel::Mcdram).written, bytes);
    assert_eq!(r.traffic_on(MemLevel::Ddr).total(), 0);
}

/// Two programs with identical structure but different thread counts give
/// identical traffic and (for uncontended rates) proportional makespans.
#[test]
fn thread_scaling_below_saturation_is_linear() {
    let cfg = MachineConfig::knl_7250(MemMode::Flat);
    let total: u64 = 16_000_000_000;
    let time_for = |threads: usize| {
        let mut p = Program::new(threads);
        for t in 0..threads {
            let share = total / threads as u64;
            p.push(
                t,
                OpKind::copy(Place::Ddr, Place::Mcdram, share, cfg.per_thread_copy_bw),
                &[],
            );
        }
        Simulator::new(cfg.clone()).run(&p).unwrap()
    };
    let r4 = time_for(4); // 19.2 GB/s < 90: unsaturated
    let r8 = time_for(8); // 38.4 GB/s < 90: unsaturated
    assert!((r4.makespan / r8.makespan - 2.0).abs() < 1e-9);
    assert_eq!(r4.ddr_traffic(), r8.ddr_traffic());
}

/// Deadlock reporting: the engine cannot deadlock on validated programs
/// (dependencies always point backwards), so exercise the defensive path
/// through an empty-thread program with pending ops on an absent thread —
/// rejected by validation instead.
#[test]
fn validation_prevents_unexecutable_programs() {
    let mut p = Program::new(1);
    p.push(0, OpKind::copy(Place::Ddr, Place::Mcdram, 0, 1.0), &[]);
    assert!(Simulator::new(tiny_flat()).run(&p).is_err());
}
