//! Error type for simulator construction and execution.

use std::fmt;

/// Errors produced while validating a machine configuration, building a
/// program, or executing a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A machine configuration parameter is out of range.
    InvalidConfig(String),
    /// An op references a thread id outside the program's thread count.
    BadThread { thread: usize, threads: usize },
    /// An op lists a dependency that does not exist (forward reference).
    BadDependency { op: usize, dep: usize },
    /// The program deadlocked: ops remain but none can become ready.
    /// Carries the ids of the stuck ops (truncated to a handful).
    Deadlock(Vec<usize>),
    /// An allocation request exceeded the capacity of a memory level.
    OutOfMemory {
        level: crate::machine::MemLevel,
        requested: u64,
        available: u64,
    },
    /// An access targets a memory level that is not addressable in the
    /// current memory mode (e.g. `Place::Mcdram` while in cache mode).
    LevelNotAddressable(crate::machine::MemLevel),
    /// An op has a non-positive byte count or rate where one is required.
    BadOp(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
            SimError::BadThread { thread, threads } => {
                write!(
                    f,
                    "op assigned to thread {thread} but program has {threads} threads"
                )
            }
            SimError::BadDependency { op, dep } => {
                write!(
                    f,
                    "op {op} depends on op {dep}, which is not defined before it"
                )
            }
            SimError::Deadlock(ops) => {
                write!(f, "simulation deadlocked with unfinished ops {ops:?}")
            }
            SimError::OutOfMemory {
                level,
                requested,
                available,
            } => write!(
                f,
                "out of memory on {level:?}: requested {requested} bytes, {available} available"
            ),
            SimError::LevelNotAddressable(level) => {
                write!(
                    f,
                    "memory level {level:?} is not addressable in the current mode"
                )
            }
            SimError::BadOp(msg) => write!(f, "malformed op: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MemLevel;

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::InvalidConfig("ddr_bandwidth must be positive".into());
        assert!(e.to_string().contains("ddr_bandwidth"));
        let e = SimError::BadThread {
            thread: 7,
            threads: 4,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('4'));
        let e = SimError::OutOfMemory {
            level: MemLevel::Mcdram,
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("Mcdram"));
        let e = SimError::Deadlock(vec![1, 2]);
        assert!(e.to_string().contains("[1, 2]"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::BadOp("zero bytes".into()));
    }
}
