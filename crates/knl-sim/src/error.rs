//! Error type for simulator construction and execution.

use std::fmt;

/// One unfinished op in a [`SimError::Deadlock`] report: where it was
/// scheduled and what it is still waiting for.
#[derive(Debug, Clone, PartialEq)]
pub struct StuckOp {
    /// Op id within the program.
    pub op: usize,
    /// The thread the op was scheduled on.
    pub thread: usize,
    /// The op's label, when the program gave it one.
    pub label: Option<String>,
    /// Dependencies that never completed. Empty when the op's dependencies
    /// are all satisfied but it is queued behind another stuck op on its
    /// thread.
    pub unmet_deps: Vec<usize>,
}

impl fmt::Display for StuckOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}", self.op)?;
        if let Some(label) = &self.label {
            write!(f, " ({label:?})")?;
        }
        write!(f, " on thread {}", self.thread)?;
        if self.unmet_deps.is_empty() {
            write!(f, " queued behind a stuck op")
        } else {
            write!(f, " waiting on {:?}", self.unmet_deps)
        }
    }
}

/// Errors produced while validating a machine configuration, building a
/// program, or executing a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A machine configuration parameter is out of range.
    InvalidConfig(String),
    /// An op references a thread id outside the program's thread count.
    BadThread { thread: usize, threads: usize },
    /// An op lists a dependency that does not exist (forward reference).
    BadDependency { op: usize, dep: usize },
    /// The program deadlocked: ops remain but none can become ready.
    /// Carries per-op diagnostics for the stuck ops (truncated to a
    /// handful), each naming its thread and unmet dependencies.
    Deadlock(Vec<StuckOp>),
    /// An allocation request exceeded the capacity of a memory level.
    OutOfMemory {
        level: crate::machine::MemLevel,
        requested: u64,
        available: u64,
    },
    /// An access targets a memory level that is not addressable in the
    /// current memory mode (e.g. `Place::Mcdram` while in cache mode).
    LevelNotAddressable(crate::machine::MemLevel),
    /// An op has a non-positive byte count or rate where one is required.
    BadOp(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
            SimError::BadThread { thread, threads } => {
                write!(
                    f,
                    "op assigned to thread {thread} but program has {threads} threads"
                )
            }
            SimError::BadDependency { op, dep } => {
                write!(
                    f,
                    "op {op} depends on op {dep}, which is not defined before it"
                )
            }
            SimError::Deadlock(ops) => {
                write!(f, "simulation deadlocked with unfinished ops: ")?;
                for (i, s) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            SimError::OutOfMemory {
                level,
                requested,
                available,
            } => write!(
                f,
                "out of memory on {level:?}: requested {requested} bytes, {available} available"
            ),
            SimError::LevelNotAddressable(level) => {
                write!(
                    f,
                    "memory level {level:?} is not addressable in the current mode"
                )
            }
            SimError::BadOp(msg) => write!(f, "malformed op: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MemLevel;

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::InvalidConfig("ddr_bandwidth must be positive".into());
        assert!(e.to_string().contains("ddr_bandwidth"));
        let e = SimError::BadThread {
            thread: 7,
            threads: 4,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('4'));
        let e = SimError::OutOfMemory {
            level: MemLevel::Mcdram,
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("Mcdram"));
        let e = SimError::Deadlock(vec![
            StuckOp {
                op: 1,
                thread: 3,
                label: Some("merge".into()),
                unmet_deps: vec![0],
            },
            StuckOp {
                op: 2,
                thread: 4,
                label: None,
                unmet_deps: vec![],
            },
        ]);
        let msg = e.to_string();
        assert!(msg.contains("op 1"), "{msg}");
        assert!(msg.contains("\"merge\""), "{msg}");
        assert!(msg.contains("thread 3"), "{msg}");
        assert!(msg.contains("waiting on [0]"), "{msg}");
        assert!(
            msg.contains("op 2") && msg.contains("queued behind"),
            "{msg}"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::BadOp("zero bytes".into()));
    }
}
