//! Machine description: memory levels, MCDRAM modes, and the KNL-7250 preset.

use crate::error::SimError;
use crate::{GB, GIB};
use serde::{Deserialize, Serialize};

/// One of the two physical memory levels of the simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Conventional DIMM-based DDR4 main memory (high capacity, low bandwidth).
    Ddr,
    /// On-package Multi-Channel DRAM (16 GiB, ~4.4x the DDR bandwidth,
    /// similar latency).
    Mcdram,
}

impl MemLevel {
    /// Both levels, in a fixed order usable for indexing.
    pub const ALL: [MemLevel; 2] = [MemLevel::Ddr, MemLevel::Mcdram];

    /// Dense index for per-level arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemLevel::Ddr => 0,
            MemLevel::Mcdram => 1,
        }
    }
}

// Transitional shims (kept one release): `MemLevel` predates the unified
// tier vocabulary in `mlm_exec`; the two enums name the same hardware.
impl From<mlm_exec::MemTier> for MemLevel {
    fn from(tier: mlm_exec::MemTier) -> Self {
        match tier {
            mlm_exec::MemTier::Ddr => MemLevel::Ddr,
            mlm_exec::MemTier::Mcdram => MemLevel::Mcdram,
        }
    }
}

impl From<MemLevel> for mlm_exec::MemTier {
    fn from(level: MemLevel) -> Self {
        match level {
            MemLevel::Ddr => mlm_exec::MemTier::Ddr,
            MemLevel::Mcdram => mlm_exec::MemTier::Mcdram,
        }
    }
}

/// BIOS-selectable MCDRAM usage mode (paper §1.1).
///
/// The paper's fourth mode, *implicit cache mode*, is not a hardware mode: it
/// is flat-mode-style chunked software executed while the machine is booted
/// in [`MemMode::Cache`]. It therefore needs no variant here; software
/// layers express it by issuing [`crate::ops::Place::CachedDdr`] accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemMode {
    /// MCDRAM is a separately addressable scratchpad ("flat mode").
    Flat,
    /// MCDRAM is a direct-mapped memory-side cache in front of DDR.
    Cache,
    /// Part of MCDRAM is cache, the rest is addressable scratchpad.
    /// `cache_fraction` is the fraction dedicated to the cache
    /// (the KNL BIOS offers 0.25 and 0.5).
    Hybrid {
        /// Fraction of MCDRAM capacity operating as cache (in `(0, 1)`).
        cache_fraction: f64,
    },
}

impl MemMode {
    /// True if any portion of MCDRAM acts as a hardware cache.
    pub fn has_cache(&self) -> bool {
        matches!(self, MemMode::Cache | MemMode::Hybrid { .. })
    }

    /// True if any portion of MCDRAM is directly addressable.
    pub fn has_flat(&self) -> bool {
        matches!(self, MemMode::Flat | MemMode::Hybrid { .. })
    }
}

/// Full description of the simulated node.
///
/// Bandwidths are in bytes/second; capacities in bytes. Defaults come from
/// the paper's Table 2 (measured with STREAM on a Xeon Phi 7250) and the KNL
/// product documentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Physical cores (KNL 7250: 68).
    pub cores: usize,
    /// SMT ways per core (KNL: 4).
    pub threads_per_core: usize,
    /// DDR capacity in bytes (the Sandia testbed had 96 GiB).
    pub ddr_capacity: u64,
    /// MCDRAM capacity in bytes (16 GiB).
    pub mcdram_capacity: u64,
    /// Peak DDR bandwidth in bytes/s (paper Table 2: 90 GB/s).
    pub ddr_bandwidth: f64,
    /// Peak MCDRAM bandwidth in bytes/s (paper Table 2: 400 GB/s).
    pub mcdram_bandwidth: f64,
    /// Per-thread DDR<->MCDRAM copy rate when not bandwidth-limited, in
    /// moved bytes/s (paper Table 2: `S_copy` = 4.8 GB/s).
    pub per_thread_copy_bw: f64,
    /// Per-thread streaming-compute traffic rate when not bandwidth-limited,
    /// in traffic bytes/s (paper Table 2: `S_comp` = 6.78 GB/s for the merge
    /// benchmark). Individual ops may override this.
    pub per_thread_compute_bw: f64,
    /// MCDRAM usage mode.
    pub mode: MemMode,
    /// Efficiency factor applied to MCDRAM bandwidth when it operates as a
    /// cache (tag checks and memory-side-cache overheads mean cache mode
    /// never reaches flat-mode peak; measured KNL numbers are ~0.8-0.9).
    pub cache_mode_efficiency: f64,
    /// Fraction of cache capacity lost to tag storage (paper §1.1: "some
    /// portion of the memory is reserved to hold the tags").
    pub cache_tag_overhead: f64,
    /// Granularity at which the direct-mapped cache is modeled, in bytes.
    /// The real cache uses 64 B lines; simulating 48 GB arrays at line
    /// granularity is infeasible, and for the streaming access patterns
    /// studied here hit/miss *fractions* are unchanged by aggregating
    /// contiguous lines into segments. Default 1 MiB.
    pub cache_segment: u64,
    /// Extra cost per cold/conflict miss, in seconds per segment, modeling
    /// the latency of the memory-side-cache fill state machine. Small but
    /// non-zero: it is what makes implicit mode pay "at the start of each
    /// chunk" (paper §3.1).
    pub cache_miss_penalty: f64,
}

impl MachineConfig {
    /// The Xeon Phi 7250 node used in the paper, in the given MCDRAM mode.
    pub fn knl_7250(mode: MemMode) -> Self {
        MachineConfig {
            cores: 68,
            threads_per_core: 4,
            ddr_capacity: 96 * GIB,
            mcdram_capacity: 16 * GIB,
            ddr_bandwidth: 90.0 * GB,
            mcdram_bandwidth: 400.0 * GB,
            per_thread_copy_bw: 4.8 * GB,
            per_thread_compute_bw: 6.78 * GB,
            mode,
            cache_mode_efficiency: 0.85,
            cache_tag_overhead: 0.03,
            cache_segment: 1 << 20,
            cache_miss_penalty: 0.0,
        }
    }

    /// A small machine useful for fast unit tests: 4 cores, 1 GiB DDR,
    /// 64 MiB MCDRAM, round-number bandwidths.
    pub fn tiny(mode: MemMode) -> Self {
        MachineConfig {
            cores: 4,
            threads_per_core: 1,
            ddr_capacity: GIB,
            mcdram_capacity: 64 << 20,
            ddr_bandwidth: 10.0 * GB,
            mcdram_bandwidth: 40.0 * GB,
            per_thread_copy_bw: 1.0 * GB,
            per_thread_compute_bw: 2.0 * GB,
            mode,
            cache_mode_efficiency: 1.0,
            cache_tag_overhead: 0.0,
            cache_segment: 1 << 20,
            cache_miss_penalty: 0.0,
        }
    }

    /// Total hardware threads (KNL 7250: 272; the paper ran with 256).
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Bytes of MCDRAM that are directly addressable in the current mode.
    pub fn addressable_mcdram(&self) -> u64 {
        match self.mode {
            MemMode::Flat => self.mcdram_capacity,
            MemMode::Cache => 0,
            MemMode::Hybrid { cache_fraction } => {
                (self.mcdram_capacity as f64 * (1.0 - cache_fraction)) as u64
            }
        }
    }

    /// Bytes of MCDRAM operating as cache, after removing tag overhead.
    pub fn effective_cache_capacity(&self) -> u64 {
        let raw = match self.mode {
            MemMode::Flat => 0,
            MemMode::Cache => self.mcdram_capacity,
            MemMode::Hybrid { cache_fraction } => {
                (self.mcdram_capacity as f64 * cache_fraction) as u64
            }
        };
        let eff = (raw as f64 * (1.0 - self.cache_tag_overhead)) as u64;
        // Round down to whole segments so the cache model has an integral
        // number of sets.
        eff - eff % self.cache_segment.max(1)
    }

    /// Effective MCDRAM bandwidth, accounting for the cache-mode efficiency
    /// loss whenever the cache is enabled.
    pub fn effective_mcdram_bandwidth(&self) -> f64 {
        if self.mode.has_cache() {
            self.mcdram_bandwidth * self.cache_mode_efficiency
        } else {
            self.mcdram_bandwidth
        }
    }

    /// Validate the configuration, returning a descriptive error for the
    /// first problem found.
    pub fn validate(&self) -> Result<(), SimError> {
        fn positive(name: &str, v: f64) -> Result<(), SimError> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(SimError::InvalidConfig(format!(
                    "{name} must be positive and finite, got {v}"
                )))
            }
        }
        if self.cores == 0 || self.threads_per_core == 0 {
            return Err(SimError::InvalidConfig(
                "need at least one hardware thread".into(),
            ));
        }
        positive("ddr_bandwidth", self.ddr_bandwidth)?;
        positive("mcdram_bandwidth", self.mcdram_bandwidth)?;
        positive("per_thread_copy_bw", self.per_thread_copy_bw)?;
        positive("per_thread_compute_bw", self.per_thread_compute_bw)?;
        if self.ddr_capacity == 0 {
            return Err(SimError::InvalidConfig(
                "ddr_capacity must be nonzero".into(),
            ));
        }
        if self.mcdram_capacity == 0 {
            return Err(SimError::InvalidConfig(
                "mcdram_capacity must be nonzero".into(),
            ));
        }
        if self.cache_segment == 0 {
            return Err(SimError::InvalidConfig(
                "cache_segment must be nonzero".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.cache_tag_overhead) {
            return Err(SimError::InvalidConfig(format!(
                "cache_tag_overhead must be in [0,1], got {}",
                self.cache_tag_overhead
            )));
        }
        if self.cache_mode_efficiency <= 0.0 || self.cache_mode_efficiency > 1.0 {
            return Err(SimError::InvalidConfig(format!(
                "cache_mode_efficiency must be in (0,1], got {}",
                self.cache_mode_efficiency
            )));
        }
        if self.cache_miss_penalty < 0.0 || !self.cache_miss_penalty.is_finite() {
            return Err(SimError::InvalidConfig(
                "cache_miss_penalty must be >= 0".into(),
            ));
        }
        if let MemMode::Hybrid { cache_fraction } = self.mode {
            if cache_fraction <= 0.0 || cache_fraction >= 1.0 {
                return Err(SimError::InvalidConfig(format!(
                    "hybrid cache_fraction must be in (0,1), got {cache_fraction}"
                )));
            }
        }
        if self.mode.has_cache() && self.effective_cache_capacity() == 0 {
            return Err(SimError::InvalidConfig(
                "cache capacity rounds to zero segments; lower cache_segment".into(),
            ));
        }
        Ok(())
    }

    /// Capacity of the given level that software can allocate from.
    pub fn addressable_capacity(&self, level: MemLevel) -> u64 {
        match level {
            MemLevel::Ddr => self.ddr_capacity,
            MemLevel::Mcdram => self.addressable_mcdram(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_preset_matches_paper_table2() {
        let cfg = MachineConfig::knl_7250(MemMode::Flat);
        assert_eq!(cfg.total_threads(), 272);
        assert_eq!(cfg.ddr_bandwidth, 90.0 * GB);
        assert_eq!(cfg.mcdram_bandwidth, 400.0 * GB);
        assert_eq!(cfg.per_thread_copy_bw, 4.8 * GB);
        assert_eq!(cfg.per_thread_compute_bw, 6.78 * GB);
        assert_eq!(cfg.mcdram_capacity, 16 * GIB);
        cfg.validate().unwrap();
    }

    #[test]
    fn flat_mode_exposes_all_mcdram() {
        let cfg = MachineConfig::knl_7250(MemMode::Flat);
        assert_eq!(cfg.addressable_mcdram(), 16 * GIB);
        assert_eq!(cfg.effective_cache_capacity(), 0);
        assert_eq!(cfg.effective_mcdram_bandwidth(), 400.0 * GB);
    }

    #[test]
    fn cache_mode_exposes_no_flat_mcdram() {
        let cfg = MachineConfig::knl_7250(MemMode::Cache);
        assert_eq!(cfg.addressable_mcdram(), 0);
        let eff = cfg.effective_cache_capacity();
        // 3% tag overhead, rounded down to segments.
        assert!(eff < 16 * GIB && eff > 15 * GIB);
        assert_eq!(eff % cfg.cache_segment, 0);
        assert!(cfg.effective_mcdram_bandwidth() < 400.0 * GB);
    }

    #[test]
    fn hybrid_splits_capacity() {
        let cfg = MachineConfig::knl_7250(MemMode::Hybrid {
            cache_fraction: 0.5,
        });
        assert_eq!(cfg.addressable_mcdram(), 8 * GIB);
        let eff = cfg.effective_cache_capacity();
        assert!(eff <= 8 * GIB && eff > 7 * GIB);
        assert!(cfg.mode.has_cache() && cfg.mode.has_flat());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = MachineConfig::tiny(MemMode::Flat);
        cfg.ddr_bandwidth = 0.0;
        assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));

        let mut cfg = MachineConfig::tiny(MemMode::Flat);
        cfg.ddr_bandwidth = f64::NAN;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::tiny(MemMode::Flat);
        cfg.cores = 0;
        assert!(cfg.validate().is_err());

        let cfg = MachineConfig::tiny(MemMode::Hybrid {
            cache_fraction: 1.5,
        });
        assert!(cfg.validate().is_err());

        let cfg = MachineConfig::tiny(MemMode::Hybrid {
            cache_fraction: 0.0,
        });
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_segment = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_mode_efficiency = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_tag_overhead = -0.1;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_miss_penalty = -1.0;
        assert!(cfg.validate().is_err());

        // A cache smaller than one segment is rejected in cache mode.
        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.mcdram_capacity = 1 << 10;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn addressable_capacity_by_level() {
        let cfg = MachineConfig::knl_7250(MemMode::Flat);
        assert_eq!(cfg.addressable_capacity(MemLevel::Ddr), 96 * GIB);
        assert_eq!(cfg.addressable_capacity(MemLevel::Mcdram), 16 * GIB);
        let cfg = MachineConfig::knl_7250(MemMode::Cache);
        assert_eq!(cfg.addressable_capacity(MemLevel::Mcdram), 0);
    }

    #[test]
    fn mode_predicates() {
        assert!(!MemMode::Flat.has_cache());
        assert!(MemMode::Flat.has_flat());
        assert!(MemMode::Cache.has_cache());
        assert!(!MemMode::Cache.has_flat());
        let h = MemMode::Hybrid {
            cache_fraction: 0.25,
        };
        assert!(h.has_cache() && h.has_flat());
    }

    #[test]
    fn level_index_is_dense() {
        assert_eq!(MemLevel::Ddr.index(), 0);
        assert_eq!(MemLevel::Mcdram.index(), 1);
        for (i, l) in MemLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }
}
