//! Simulation results: makespan, per-level traffic, utilization.

use crate::cache::CacheStats;
use crate::machine::MemLevel;
use serde::{Deserialize, Serialize};

/// Per-memory-level traffic counters in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelTraffic {
    /// Bytes read from the level.
    pub read: u64,
    /// Bytes written to the level.
    pub written: u64,
}

impl LevelTraffic {
    /// Total bytes moved on the level's bus.
    pub fn total(&self) -> u64 {
        self.read + self.written
    }
}

/// Deterministic result of executing a [`crate::ops::Program`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Virtual seconds from program start to last op completion.
    pub makespan: f64,
    /// Traffic per level, indexed by [`MemLevel::index`].
    pub traffic: [LevelTraffic; 2],
    /// Busy-byte integral per level: `sum over flows of bytes served`,
    /// identical to `traffic[..].total()` but kept separate as a
    /// cross-check of flow accounting.
    pub served_bytes: [f64; 2],
    /// Average utilization of each level's bus over the makespan, in `[0,1]`.
    pub utilization: [f64; 2],
    /// Cache statistics (all zeros when the machine has no cache).
    pub cache: CacheStats,
    /// Number of ops executed.
    pub ops_executed: usize,
    /// Sum over threads of seconds spent executing ops (busy time).
    pub thread_busy: f64,
}

impl SimReport {
    /// Traffic on a level by enum rather than index.
    pub fn traffic_on(&self, level: MemLevel) -> LevelTraffic {
        self.traffic[level.index()]
    }

    /// DDR bytes moved (read + written) — the quantity Bender et al. predict
    /// chunking reduces by ~2.5x for sort.
    pub fn ddr_traffic(&self) -> u64 {
        self.traffic_on(MemLevel::Ddr).total()
    }

    /// MCDRAM bytes moved (read + written).
    pub fn mcdram_traffic(&self) -> u64 {
        self.traffic_on(MemLevel::Mcdram).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = LevelTraffic {
            read: 10,
            written: 5,
        };
        assert_eq!(t.total(), 15);
    }

    #[test]
    fn report_accessors() {
        let mut r = SimReport::default();
        r.traffic[MemLevel::Ddr.index()] = LevelTraffic {
            read: 100,
            written: 50,
        };
        r.traffic[MemLevel::Mcdram.index()] = LevelTraffic {
            read: 7,
            written: 3,
        };
        assert_eq!(r.ddr_traffic(), 150);
        assert_eq!(r.mcdram_traffic(), 10);
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, 100);
    }
}
