//! Segment-granular model of the KNL's direct-mapped memory-side MCDRAM cache.
//!
//! The real cache uses 64 B lines. Simulating multi-billion-element arrays at
//! line granularity is infeasible, and for the bulk streaming access patterns
//! of the paper the hit/miss *fractions* are unchanged when contiguous lines
//! are aggregated: a streaming pass either re-touches a resident segment
//! (hit) or faults it in whole (cold/conflict miss). We therefore model the
//! cache as `capacity / segment` direct-mapped sets of segment-sized blocks.
//!
//! The model is write-back, write-allocate, with one simplification for
//! writes: a write miss does not read the segment from DDR first (KNL's
//! memory-side cache services full-line streaming stores without a fill
//! read, and every write in the studied workloads is a full-segment
//! streaming write). A dirty segment that is evicted costs a writeback:
//! one MCDRAM read plus one DDR write of the segment.

use crate::machine::MemLevel;
use serde::{Deserialize, Serialize};

/// Byte traffic resulting from pushing an access through the cache model.
///
/// All fields are in bytes. `to_level` tells the engine which bus each kind
/// of traffic rides on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheTraffic {
    /// Bytes served from resident segments (MCDRAM traffic).
    pub hit_bytes: u64,
    /// Bytes faulted in from DDR (DDR read traffic) — for read misses these
    /// bytes also appear as `fill_bytes` going into MCDRAM.
    pub miss_bytes: u64,
    /// Bytes written into MCDRAM to fill missing segments.
    pub fill_bytes: u64,
    /// Bytes of dirty evictions: MCDRAM read + DDR write each.
    pub writeback_bytes: u64,
    /// Number of segment misses (for the per-miss latency penalty).
    pub miss_count: u64,
}

impl CacheTraffic {
    /// Total bytes this access moves on the given level's bus.
    pub fn traffic_on(&self, level: MemLevel) -> u64 {
        match level {
            MemLevel::Ddr => self.miss_bytes + self.writeback_bytes,
            MemLevel::Mcdram => self.hit_bytes + self.fill_bytes + self.writeback_bytes,
        }
    }
}

/// Cumulative statistics of a [`DirectMappedCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total bytes of accesses pushed through the cache.
    pub accessed_bytes: u64,
    /// Bytes that hit resident segments.
    pub hit_bytes: u64,
    /// Bytes that missed.
    pub miss_bytes: u64,
    /// Bytes written back to DDR on dirty evictions.
    pub writeback_bytes: u64,
    /// Individual segment misses.
    pub misses: u64,
    /// Individual segment hits.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate by bytes, in `[0, 1]`; `1.0` for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accessed_bytes == 0 {
            1.0
        } else {
            self.hit_bytes as f64 / self.accessed_bytes as f64
        }
    }
}

/// Direct-mapped, write-back, segment-granular cache over the DDR address
/// space.
#[derive(Debug, Clone)]
pub struct DirectMappedCache {
    segment: u64,
    /// Tag per set: the DDR segment number resident in that set.
    tags: Vec<Option<u64>>,
    dirty: Vec<bool>,
    stats: CacheStats,
}

impl DirectMappedCache {
    /// Create a cache of `capacity` bytes (rounded down to whole segments)
    /// with the given segment size.
    ///
    /// # Panics
    /// Panics if fewer than one set results — the caller (machine config
    /// validation) must prevent that.
    pub fn new(capacity: u64, segment: u64) -> Self {
        assert!(segment > 0, "segment size must be positive");
        let sets = (capacity / segment) as usize;
        assert!(sets > 0, "cache must hold at least one segment");
        DirectMappedCache {
            segment,
            tags: vec![None; sets],
            dirty: vec![false; sets],
            stats: CacheStats::default(),
        }
    }

    /// Number of direct-mapped sets.
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// Segment (block) size in bytes.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Cumulative statistics since construction or the last [`Self::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate all contents (e.g. on simulated reboot between runs).
    /// Dirty data is discarded — use only between independent experiments.
    pub fn invalidate(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    #[inline]
    fn set_of(&self, seg_no: u64) -> usize {
        (seg_no % self.tags.len() as u64) as usize
    }

    /// Push a streaming access over DDR byte range `[addr, addr + bytes)`
    /// through the cache, updating tags/dirty bits, and return the resulting
    /// bus traffic.
    ///
    /// Partial first/last segments are charged proportionally: a hit or miss
    /// on a partially-covered segment contributes only the covered bytes.
    pub fn access(&mut self, addr: u64, bytes: u64, write: bool) -> CacheTraffic {
        let mut t = CacheTraffic::default();
        if bytes == 0 {
            return t;
        }
        let seg = self.segment;
        let first = addr / seg;
        let last = (addr + bytes - 1) / seg;
        for seg_no in first..=last {
            let seg_start = seg_no * seg;
            let lo = addr.max(seg_start);
            let hi = (addr + bytes).min(seg_start + seg);
            let covered = hi - lo;
            let set = self.set_of(seg_no);
            match self.tags[set] {
                Some(tag) if tag == seg_no => {
                    t.hit_bytes += covered;
                    self.stats.hits += 1;
                    self.stats.hit_bytes += covered;
                    if write {
                        self.dirty[set] = true;
                    }
                }
                prev => {
                    // Miss: evict (with writeback if dirty), then fill.
                    if prev.is_some() && self.dirty[set] {
                        t.writeback_bytes += seg;
                        self.stats.writeback_bytes += seg;
                    }
                    self.tags[set] = Some(seg_no);
                    self.dirty[set] = write;
                    t.miss_count += 1;
                    self.stats.misses += 1;
                    self.stats.miss_bytes += covered;
                    if write {
                        // Full-segment streaming store: no fill read.
                        t.hit_bytes += covered; // the write itself lands in MCDRAM
                    } else {
                        t.miss_bytes += covered;
                        t.fill_bytes += covered;
                    }
                }
            }
            self.stats.accessed_bytes += covered;
        }
        t
    }

    /// True if the whole byte range is resident.
    pub fn is_resident(&self, addr: u64, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        let first = addr / self.segment;
        let last = (addr + bytes - 1) / self.segment;
        (first..=last).all(|s| self.tags[self.set_of(s)] == Some(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEG: u64 = 1024;

    fn cache_of(segments: u64) -> DirectMappedCache {
        DirectMappedCache::new(segments * SEG, SEG)
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = cache_of(16);
        let t = c.access(0, 4 * SEG, false);
        assert_eq!(t.miss_bytes, 4 * SEG);
        assert_eq!(t.fill_bytes, 4 * SEG);
        assert_eq!(t.hit_bytes, 0);
        assert_eq!(t.miss_count, 4);

        let t = c.access(0, 4 * SEG, false);
        assert_eq!(t.miss_bytes, 0);
        assert_eq!(t.hit_bytes, 4 * SEG);
        assert!(c.is_resident(0, 4 * SEG));
    }

    #[test]
    fn write_miss_has_no_fill_read() {
        let mut c = cache_of(16);
        let t = c.access(0, 2 * SEG, true);
        assert_eq!(
            t.miss_bytes, 0,
            "streaming store allocates without DDR read"
        );
        assert_eq!(t.fill_bytes, 0);
        assert_eq!(t.hit_bytes, 2 * SEG);
        assert_eq!(t.miss_count, 2);
    }

    #[test]
    fn dirty_eviction_costs_writeback() {
        let mut c = cache_of(4);
        // Write segments 0..4 (fills the whole cache, all dirty).
        c.access(0, 4 * SEG, true);
        // Read segments 4..8: conflict-evicts all four dirty segments.
        let t = c.access(4 * SEG, 4 * SEG, false);
        assert_eq!(t.writeback_bytes, 4 * SEG);
        assert_eq!(t.miss_bytes, 4 * SEG);
        // DDR sees miss reads + writebacks; MCDRAM sees fills + writeback reads.
        assert_eq!(t.traffic_on(MemLevel::Ddr), 8 * SEG);
        assert_eq!(t.traffic_on(MemLevel::Mcdram), 8 * SEG);
    }

    #[test]
    fn clean_eviction_costs_no_writeback() {
        let mut c = cache_of(4);
        c.access(0, 4 * SEG, false);
        let t = c.access(4 * SEG, 4 * SEG, false);
        assert_eq!(t.writeback_bytes, 0);
        assert_eq!(t.miss_bytes, 4 * SEG);
    }

    #[test]
    fn direct_mapped_aliasing_thrashes() {
        // Two ranges congruent mod cache size ping-pong every access.
        let mut c = cache_of(4);
        let a = 0u64;
        let b = 4 * SEG; // same sets as a
        for _ in 0..3 {
            let ta = c.access(a, 4 * SEG, false);
            assert_eq!(ta.hit_bytes, 0, "aliased range evicted everything");
            let tb = c.access(b, 4 * SEG, false);
            assert_eq!(tb.hit_bytes, 0);
        }
        let s = c.stats();
        assert_eq!(s.hit_bytes, 0);
        assert_eq!(s.miss_bytes, 24 * SEG);
    }

    #[test]
    fn non_aliasing_ranges_coexist() {
        let mut c = cache_of(8);
        c.access(0, 4 * SEG, false);
        c.access(4 * SEG, 4 * SEG, false);
        assert!(c.is_resident(0, 8 * SEG));
        let t = c.access(0, 8 * SEG, false);
        assert_eq!(t.hit_bytes, 8 * SEG);
    }

    #[test]
    fn partial_segments_charged_proportionally() {
        let mut c = cache_of(8);
        // 1.5 segments starting mid-segment: touches segments 0,1,2 partially.
        let t = c.access(SEG / 2, SEG + SEG / 2, false);
        assert_eq!(t.miss_bytes, SEG + SEG / 2);
        assert_eq!(t.miss_count, 2); // segments 0 and 1 (covers up to byte 2048)
        let t = c.access(SEG / 2, SEG + SEG / 2, false);
        assert_eq!(t.hit_bytes, SEG + SEG / 2);
    }

    #[test]
    fn zero_byte_access_is_noop() {
        let mut c = cache_of(4);
        let t = c.access(123, 0, true);
        assert_eq!(t, CacheTraffic::default());
        assert_eq!(c.stats().accessed_bytes, 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut c = cache_of(4);
        c.access(0, 2 * SEG, false);
        c.access(0, 2 * SEG, false);
        let s = c.stats();
        assert_eq!(s.accessed_bytes, 4 * SEG);
        assert_eq!(s.hit_bytes, 2 * SEG);
        assert_eq!(s.miss_bytes, 2 * SEG);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn invalidate_clears_contents() {
        let mut c = cache_of(4);
        c.access(0, 4 * SEG, true);
        assert!(c.is_resident(0, 4 * SEG));
        c.invalidate();
        assert!(!c.is_resident(0, SEG));
        // No writeback charged for discarded dirty data — next access misses.
        let t = c.access(0, SEG, false);
        assert_eq!(t.writeback_bytes, 0);
        assert_eq!(t.miss_bytes, SEG);
    }

    #[test]
    fn working_set_larger_than_cache_streams_at_zero_hit_rate() {
        let mut c = cache_of(8);
        // Stream 32 segments repeatedly: classic LRU-defeating pattern also
        // defeats direct mapping (every set sees 4 distinct tags per pass).
        for _ in 0..4 {
            c.access(0, 32 * SEG, false);
        }
        let s = c.stats();
        assert_eq!(s.hit_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rejects_zero_capacity() {
        DirectMappedCache::new(10, SEG);
    }
}
