//! # knl-sim — a discrete-event simulator of a KNL-style two-level memory system
//!
//! This crate is the hardware substrate for reproducing *Optimizing for KNL
//! Usage Modes When Data Doesn't Fit in MCDRAM* (Butcher et al., ICPP 2018)
//! without access to Knights Landing silicon.
//!
//! The simulated machine has two memory levels — DDR (high capacity, ~90 GB/s)
//! and MCDRAM (16 GB, ~400 GB/s) — and a configurable number of hardware
//! threads. MCDRAM can be configured in the three modes the real BIOS offers
//! (**flat**, **cache**, **hybrid**) plus the paper's *implicit* usage mode,
//! which is simply flat-mode software run while the hardware is in cache mode.
//!
//! ## What is simulated
//!
//! The paper's phenomena are *bandwidth* phenomena: DDR saturation by copy
//! threads, MCDRAM sharing between copy and compute thread pools, and cold /
//! conflict misses of the direct-mapped MCDRAM cache. Accordingly the
//! simulator executes *op graphs* — per-thread sequences of [`ops::OpKind`]
//! (bulk copies, streaming compute, fixed delays) with explicit cross-thread
//! dependencies — against a max–min-fair ("water-filling") bandwidth arbiter
//! with per-flow rate caps ([`bandwidth`]). Progress is tracked in virtual
//! seconds; the result is a deterministic [`report::SimReport`].
//!
//! The closed-form model of the paper (its Equations 1–5) is a special case
//! of this arbiter; the discrete-event engine additionally captures pipeline
//! fill/drain, lockstep barriers, and cache effects.
//!
//! ## Quick example
//!
//! ```
//! use knl_sim::machine::{MachineConfig, MemMode};
//! use knl_sim::ops::{OpKind, Place, Program};
//! use knl_sim::engine::Simulator;
//!
//! // One thread copies 1 GiB from DDR to MCDRAM on a flat-mode KNL.
//! let cfg = MachineConfig::knl_7250(MemMode::Flat);
//! let mut prog = Program::new(1);
//! prog.push(
//!     0,
//!     OpKind::copy(Place::Ddr, Place::Mcdram, 1 << 30, cfg.per_thread_copy_bw),
//!     &[],
//! );
//! let report = Simulator::new(cfg).run(&prog).unwrap();
//! // A single copy thread is capped at S_copy = 4.8 GB/s.
//! let expect = (1u64 << 30) as f64 / 4.8e9;
//! assert!((report.makespan - expect).abs() / expect < 1e-9);
//! ```

pub mod alloc;
pub mod bandwidth;
pub mod cache;
pub mod engine;
pub mod error;
pub mod machine;
pub mod ops;
#[cfg(feature = "reference-engine")]
mod reference;
pub mod report;
pub mod slab;
pub mod trace;

pub use engine::{EngineStats, Simulator};
pub use error::{SimError, StuckOp};
pub use machine::{MachineConfig, MemLevel, MemMode};
pub use ops::{Access, OpId, OpKind, Place, Program, ThreadId};
pub use report::SimReport;
pub use trace::{OpRecord, Trace};

/// Bytes per gigabyte as used throughout the paper (decimal GB, matching
/// STREAM-style bandwidth reporting).
pub const GB: f64 = 1e9;

/// Bytes per binary gibibyte (used for capacities, which Intel documents in
/// powers of two: the KNL has 16 GiB of MCDRAM).
pub const GIB: u64 = 1 << 30;
