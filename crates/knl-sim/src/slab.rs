//! Generation-tagged slab arena for engine-internal objects.
//!
//! The event engine keeps its active flows in a [`Slab`]: insertion reuses
//! freed slots (no per-flow heap allocation once the slab is warm) and every
//! slot carries a *generation* counter that is bumped on removal. A
//! [`Key`] therefore acts as a weak handle — stale references held by
//! lazily-invalidated event-queue entries resolve to `None` instead of
//! aliasing whatever object took over the slot.

/// Weak handle to a slab slot: the slot index plus the generation the slot
/// had when the value was inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    slot: u32,
    gen: u32,
}

impl Key {
    /// The raw slot index; stable for the lifetime of the entry.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab of `T` with generation-tagged keys. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `val`, reusing a freed slot when one exists.
    pub fn insert(&mut self, val: T) -> Key {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            debug_assert!(e.val.is_none());
            e.val = Some(val);
            Key { slot, gen: e.gen }
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            self.entries.push(Entry {
                gen: 0,
                val: Some(val),
            });
            Key { slot, gen: 0 }
        }
    }

    /// The value behind `key`, or `None` when it was removed (or the slot
    /// was since reused by a newer generation).
    pub fn get(&self, key: Key) -> Option<&T> {
        let e = self.entries.get(key.slot as usize)?;
        if e.gen != key.gen {
            return None;
        }
        e.val.as_ref()
    }

    /// Mutable access; same staleness semantics as [`Self::get`].
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        let e = self.entries.get_mut(key.slot as usize)?;
        if e.gen != key.gen {
            return None;
        }
        e.val.as_mut()
    }

    /// Remove and return the value behind `key`; stale keys return `None`.
    /// The slot's generation is bumped so outstanding copies of `key` go
    /// stale immediately.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let e = self.entries.get_mut(key.slot as usize)?;
        if e.gen != key.gen {
            return None;
        }
        let val = e.val.take()?;
        e.gen = e.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.len -= 1;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_keys_never_alias_reused_slots() {
        let mut s = Slab::with_capacity(4);
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // `b` reuses `a`'s slot but with a bumped generation.
        assert_eq!(b.slot(), a.slot());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn double_remove_is_a_noop() {
        let mut s = Slab::new();
        let a = s.insert(7i64);
        assert_eq!(s.remove(a), Some(7));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn slots_are_reused() {
        let mut s = Slab::new();
        let keys: Vec<Key> = (0..8).map(|i| s.insert(i)).collect();
        for k in &keys {
            s.remove(*k);
        }
        for i in 0..8 {
            s.insert(100 + i);
        }
        // All eight inserts reused freed slots: no growth past 8 entries.
        assert_eq!(s.entries.len(), 8);
        assert_eq!(s.len(), 8);
    }
}
