//! Execution traces: per-op start/finish records and derived views
//! (per-thread Gantt rendering, bus-utilization timelines).
//!
//! Produced by [`crate::engine::Simulator::run_traced`]. Traces make the
//! pipeline structure visible — which phases overlap, where DDR saturates,
//! when the copy pools idle — the facts the paper's Figures 2–5 draw by
//! hand.

use serde::{Deserialize, Serialize};

/// One executed op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Op id within the program (push order).
    pub op: usize,
    /// Simulated thread that executed it.
    pub thread: usize,
    /// Virtual start time, seconds.
    pub start: f64,
    /// Virtual end time, seconds.
    pub end: f64,
    /// Optional label from the program.
    pub label: Option<String>,
}

impl OpRecord {
    /// Duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One piecewise-constant bus-utilization segment between two engine
/// events. Rates are exact: between events the max–min-fair allocation is
/// constant, so no sampling error is involved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusSegment {
    /// Segment start, virtual seconds.
    pub start: f64,
    /// Segment end, virtual seconds.
    pub end: f64,
    /// DDR bus utilization in `[0, 1]`.
    pub ddr: f64,
    /// MCDRAM bus utilization in `[0, 1]`.
    pub mcdram: f64,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Records in completion order.
    pub ops: Vec<OpRecord>,
    /// Exact bus-utilization timeline (one segment per inter-event span).
    pub bus: Vec<BusSegment>,
    /// Program makespan (copied from the report for self-containment).
    pub makespan: f64,
    /// Number of simulated threads.
    pub threads: usize,
}

impl Trace {
    /// Pre-size the record vectors for a program of `n_ops` ops: one op
    /// record per op, and (as a heuristic upper bound before merging) one
    /// bus segment per op. Large sweeps previously paid one reallocation
    /// chain per trace; this makes recording append-only in the common
    /// case.
    pub fn reserve_for(&mut self, n_ops: usize) {
        self.ops.reserve(n_ops);
        self.bus.reserve(n_ops);
    }

    /// Append a bus-utilization segment, merging it into the previous
    /// segment when the two are contiguous and have identical DDR and
    /// MCDRAM utilization. Rate epochs frequently span many same-rate
    /// inter-event gaps (delay expiries that change no flow), so merging
    /// keeps traces of large sweeps proportional to the number of *rate
    /// changes* rather than the number of events.
    pub fn record_bus(&mut self, seg: BusSegment) {
        if let Some(last) = self.bus.last_mut() {
            if last.end == seg.start && last.ddr == seg.ddr && last.mcdram == seg.mcdram {
                last.end = seg.end;
                return;
            }
        }
        self.bus.push(seg);
    }

    /// Records executed by one thread, in start order.
    pub fn thread_ops(&self, thread: usize) -> Vec<&OpRecord> {
        let mut v: Vec<&OpRecord> = self.ops.iter().filter(|r| r.thread == thread).collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Fraction of the makespan during which `thread` was executing ops
    /// of non-zero duration.
    pub fn thread_busy_fraction(&self, thread: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .ops
            .iter()
            .filter(|r| r.thread == thread)
            .map(OpRecord::duration)
            .sum();
        busy / self.makespan
    }

    /// Number of ops running at time `t` (half-open intervals).
    pub fn concurrency_at(&self, t: f64) -> usize {
        self.ops
            .iter()
            .filter(|r| r.start <= t && t < r.end)
            .count()
    }

    /// Average utilization of a bus over `[t0, t1)` from the exact
    /// timeline; `ddr = true` selects DDR, else MCDRAM.
    pub fn bus_utilization(&self, t0: f64, t1: f64, ddr: bool) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for seg in &self.bus {
            let lo = seg.start.max(t0);
            let hi = seg.end.min(t1);
            if hi > lo {
                acc += (hi - lo) * if ddr { seg.ddr } else { seg.mcdram };
            }
        }
        acc / (t1 - t0)
    }

    /// Render a one-line utilization sparkline for a bus over the whole
    /// makespan, `width` characters wide, using eight shade levels.
    pub fn bus_sparkline(&self, ddr: bool, width: usize) -> String {
        const LEVELS: [char; 9] = [
            ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
            '\u{2587}', '\u{2588}',
        ];
        let width = width.max(1);
        if self.makespan <= 0.0 {
            return String::new();
        }
        let dt = self.makespan / width as f64;
        (0..width)
            .map(|i| {
                let u = self.bus_utilization(i as f64 * dt, (i + 1) as f64 * dt, ddr);
                LEVELS[((u * 8.0).round() as usize).min(8)]
            })
            .collect()
    }

    /// Render an ASCII Gantt chart, `width` columns wide, one row per
    /// thread in `threads` (e.g. `0..8`). Each cell shows `#` when the
    /// thread is busy for the majority of that time slice, `.` otherwise.
    pub fn gantt(&self, threads: impl IntoIterator<Item = usize>, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        if self.makespan <= 0.0 {
            return out;
        }
        let dt = self.makespan / width as f64;
        for t in threads {
            let rows = self.thread_ops(t);
            out.push_str(&format!("t{t:>4} |"));
            for col in 0..width {
                let lo = col as f64 * dt;
                let hi = lo + dt;
                let busy: f64 = rows
                    .iter()
                    .map(|r| (r.end.min(hi) - r.start.max(lo)).max(0.0))
                    .sum();
                out.push(if busy >= 0.5 * dt { '#' } else { '.' });
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: usize, thread: usize, start: f64, end: f64) -> OpRecord {
        OpRecord {
            op,
            thread,
            start,
            end,
            label: None,
        }
    }

    fn sample() -> Trace {
        Trace {
            ops: vec![
                rec(0, 0, 0.0, 1.0),
                rec(1, 0, 1.0, 2.0),
                rec(2, 1, 0.5, 1.5),
            ],
            bus: vec![
                BusSegment {
                    start: 0.0,
                    end: 1.0,
                    ddr: 1.0,
                    mcdram: 0.25,
                },
                BusSegment {
                    start: 1.0,
                    end: 2.0,
                    ddr: 0.0,
                    mcdram: 0.75,
                },
            ],
            makespan: 2.0,
            threads: 2,
        }
    }

    #[test]
    fn thread_ops_sorted_by_start() {
        let t = sample();
        let rows = t.thread_ops(0);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].start <= rows[1].start);
        assert_eq!(t.thread_ops(1).len(), 1);
        assert!(t.thread_ops(7).is_empty());
    }

    #[test]
    fn busy_fractions() {
        let t = sample();
        assert!((t.thread_busy_fraction(0) - 1.0).abs() < 1e-12);
        assert!((t.thread_busy_fraction(1) - 0.5).abs() < 1e-12);
        assert_eq!(t.thread_busy_fraction(9), 0.0);
    }

    #[test]
    fn concurrency_counts_overlaps() {
        let t = sample();
        assert_eq!(t.concurrency_at(0.25), 1);
        assert_eq!(t.concurrency_at(0.75), 2);
        assert_eq!(t.concurrency_at(1.75), 1);
        assert_eq!(t.concurrency_at(2.5), 0);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = sample();
        let g = t.gantt(0..2, 8);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("t   0 |########|"));
        // Thread 1 busy only in the middle half.
        assert!(lines[1].contains("..##..") || lines[1].contains(".####."));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::default();
        assert_eq!(t.gantt(0..4, 10), "");
        assert_eq!(t.concurrency_at(0.0), 0);
        assert_eq!(t.bus_sparkline(true, 8), "");
        assert_eq!(t.bus_utilization(0.0, 1.0, true), 0.0);
    }

    #[test]
    fn bus_utilization_integrates_segments() {
        let t = sample();
        assert!((t.bus_utilization(0.0, 2.0, true) - 0.5).abs() < 1e-12);
        assert!((t.bus_utilization(0.0, 2.0, false) - 0.5).abs() < 1e-12);
        assert!((t.bus_utilization(0.0, 1.0, true) - 1.0).abs() < 1e-12);
        assert!((t.bus_utilization(1.5, 2.0, false) - 0.75).abs() < 1e-12);
        // Out-of-range windows integrate to zero coverage.
        assert_eq!(t.bus_utilization(5.0, 6.0, true), 0.0);
        assert_eq!(t.bus_utilization(1.0, 1.0, true), 0.0);
    }

    #[test]
    fn record_bus_merges_identical_adjacent_segments() {
        let mut t = Trace::default();
        let seg = |start: f64, end: f64, ddr: f64, mcdram: f64| BusSegment {
            start,
            end,
            ddr,
            mcdram,
        };
        t.record_bus(seg(0.0, 1.0, 0.5, 0.25));
        t.record_bus(seg(1.0, 2.0, 0.5, 0.25)); // identical + contiguous: merged
        assert_eq!(t.bus.len(), 1);
        assert_eq!(t.bus[0].end, 2.0);
        t.record_bus(seg(2.0, 3.0, 0.5, 0.75)); // different mcdram: kept
        t.record_bus(seg(4.0, 5.0, 0.5, 0.75)); // gap (idle span): kept
        assert_eq!(t.bus.len(), 3);
        // Integrals are unaffected by merging.
        assert!((t.bus_utilization(0.0, 2.0, true) - 0.5).abs() < 1e-12);
        assert!((t.bus_utilization(0.0, 2.0, false) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reserve_for_is_harmless() {
        let mut t = Trace::default();
        t.reserve_for(1000);
        assert!(t.ops.capacity() >= 1000);
        assert!(t.bus.capacity() >= 1000);
        assert_eq!(t.ops.len(), 0);
    }

    #[test]
    fn sparkline_has_requested_width_and_shape() {
        let t = sample();
        let ddr = t.bus_sparkline(true, 8);
        assert_eq!(ddr.chars().count(), 8);
        // First half fully busy, second half idle.
        let chars: Vec<char> = ddr.chars().collect();
        assert_eq!(chars[0], '\u{2588}');
        assert_eq!(chars[7], ' ');
    }
}
