//! Programs: per-thread op sequences with cross-thread dependencies.
//!
//! A [`Program`] is the unit of simulation. Software layers (the chunking
//! pipeline, the sort builders) lower an algorithm + schedule into a program;
//! the [`crate::engine::Simulator`] executes it in virtual time.
//!
//! Each op belongs to a simulated hardware thread and threads execute their
//! ops strictly in push order. Cross-thread ordering (pipeline steps,
//! barriers) is expressed with explicit dependencies: an op starts only when
//! it is at the front of its thread's queue *and* all of its dependencies
//! have completed.

use crate::error::SimError;

/// Identifier of an op within a [`Program`] (dense, in push order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Identifier of a simulated hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

/// Where an access lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Place {
    /// Directly addressed DDR, bypassing the MCDRAM cache (flat-mode DDR,
    /// or any DDR access while the machine is in flat mode).
    Ddr,
    /// Directly addressed MCDRAM (flat mode or the flat part of hybrid).
    Mcdram,
    /// DDR address range accessed *through* the MCDRAM cache (cache or
    /// hybrid mode). `addr` is the DDR byte address of the start of the
    /// touched range; the access covers `[addr, addr + bytes)`.
    CachedDdr {
        /// Starting DDR byte address of the range.
        addr: u64,
    },
}

/// One logical memory access of an op: `bytes` bytes read from or written
/// to `place`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// Target of the access.
    pub place: Place,
    /// Bytes touched.
    pub bytes: u64,
    /// True for writes (affects cache dirty state and writebacks).
    pub write: bool,
}

impl Access {
    /// Read `bytes` from `place`.
    pub fn read(place: Place, bytes: u64) -> Self {
        Access {
            place,
            bytes,
            write: false,
        }
    }

    /// Write `bytes` to `place`.
    pub fn write(place: Place, bytes: u64) -> Self {
        Access {
            place,
            bytes,
            write: true,
        }
    }
}

/// The work a single op performs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Bulk transfer: read `bytes` from `src`, write `bytes` to `dst`,
    /// at a per-thread logical rate of at most `rate_cap` moved bytes/s
    /// (the paper's `S_copy`).
    Copy {
        /// Source of the transfer (read side).
        src: Place,
        /// Destination of the transfer (write side).
        dst: Place,
        /// Bytes moved.
        bytes: u64,
        /// Per-thread cap on moved bytes/s.
        rate_cap: f64,
    },
    /// Streaming compute: the op makes the listed accesses; its *logical
    /// bytes* are the total traffic (sum of access bytes), progressing at a
    /// per-thread rate of at most `rate_cap` traffic bytes/s (the paper's
    /// `S_comp`).
    Stream {
        /// The accesses (reads and writes) this op performs.
        accesses: Vec<Access>,
        /// Per-thread cap on total traffic bytes/s.
        rate_cap: f64,
    },
    /// Fixed virtual-time delay (models fork/join and bookkeeping costs).
    Delay {
        /// Seconds of virtual time.
        seconds: f64,
    },
}

impl OpKind {
    /// Convenience constructor for a plain [`OpKind::Copy`].
    pub fn copy(src: Place, dst: Place, bytes: u64, rate_cap: f64) -> Self {
        OpKind::Copy {
            src,
            dst,
            bytes,
            rate_cap,
        }
    }

    /// Convenience constructor for a [`OpKind::Stream`] that reads and
    /// writes the same number of bytes at a single place — the shape of an
    /// in-place pass (partition step, in-place merge half, STREAM kernel).
    pub fn inplace_pass(place: Place, bytes: u64, rate_cap: f64) -> Self {
        OpKind::Stream {
            accesses: vec![Access::read(place, bytes), Access::write(place, bytes)],
            rate_cap,
        }
    }

    /// Total logical bytes of this op (0 for delays).
    pub fn logical_bytes(&self) -> u64 {
        match self {
            OpKind::Copy { bytes, .. } => 2 * *bytes,
            OpKind::Stream { accesses, .. } => accesses.iter().map(|a| a.bytes).sum(),
            OpKind::Delay { .. } => 0,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        match self {
            OpKind::Copy {
                bytes, rate_cap, ..
            } => {
                if *bytes == 0 {
                    return Err(SimError::BadOp("copy of zero bytes".into()));
                }
                if !rate_cap.is_finite() || *rate_cap <= 0.0 {
                    return Err(SimError::BadOp(format!(
                        "copy rate_cap {rate_cap} must be > 0"
                    )));
                }
            }
            OpKind::Stream { accesses, rate_cap } => {
                if accesses.is_empty() || accesses.iter().all(|a| a.bytes == 0) {
                    return Err(SimError::BadOp("stream op with no bytes".into()));
                }
                if !rate_cap.is_finite() || *rate_cap <= 0.0 {
                    return Err(SimError::BadOp(format!(
                        "stream rate_cap {rate_cap} must be > 0"
                    )));
                }
            }
            OpKind::Delay { seconds } => {
                if !seconds.is_finite() || *seconds < 0.0 {
                    return Err(SimError::BadOp(format!("delay of {seconds} seconds")));
                }
            }
        }
        Ok(())
    }
}

/// An op plus its scheduling metadata.
#[derive(Debug, Clone)]
pub struct Op {
    /// What the op does.
    pub kind: OpKind,
    /// The simulated thread executing this op.
    pub thread: ThreadId,
    /// Ops that must complete before this one can start (in addition to the
    /// implicit program order on `thread`).
    pub deps: Vec<OpId>,
    /// Optional label for traces and error messages.
    pub label: Option<String>,
}

/// A complete simulation input: a fixed thread count and an op list.
#[derive(Debug, Clone, Default)]
pub struct Program {
    threads: usize,
    ops: Vec<Op>,
}

impl Program {
    /// Create a program for `threads` simulated hardware threads.
    pub fn new(threads: usize) -> Self {
        Program {
            threads,
            ops: Vec::new(),
        }
    }

    /// Number of simulated threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The ops in push order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Append an op executing on `thread` after `deps`. Returns its id.
    pub fn push(&mut self, thread: usize, kind: OpKind, deps: &[OpId]) -> OpId {
        self.push_labeled(thread, kind, deps, None)
    }

    /// Append a labeled op (labels show up in deadlock diagnostics).
    pub fn push_labeled(
        &mut self,
        thread: usize,
        kind: OpKind,
        deps: &[OpId],
        label: Option<String>,
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            kind,
            thread: ThreadId(thread),
            deps: deps.to_vec(),
            label,
        });
        id
    }

    /// Add a full barrier: returns a set of zero-cost ops, one per thread in
    /// `threads`, each depending on `after`, such that making later ops
    /// depend on the returned ids serializes the two phases. As a
    /// convenience the returned vector can be used directly as the `deps`
    /// of every op in the next phase.
    pub fn barrier(
        &mut self,
        threads: impl IntoIterator<Item = usize>,
        after: &[OpId],
    ) -> Vec<OpId> {
        threads
            .into_iter()
            .map(|t| self.push(t, OpKind::Delay { seconds: 0.0 }, after))
            .collect()
    }

    /// Splice `other` into this program with its threads shifted by
    /// `thread_offset`, returning the new ids of `other`'s ops in push
    /// order (`other`'s `OpId(i)` becomes `returned[i]`).
    ///
    /// This is how independent per-job programs compose into one
    /// co-scheduled simulation: each job is built in isolation on threads
    /// `0..k`, then spliced onto its own thread block of the combined
    /// program, where the bandwidth arbiter makes the jobs' flows contend.
    /// In-thread push order is preserved, so ops pushed on a target thread
    /// *before* the splice (e.g. a [`OpKind::Delay`] modeling the job's
    /// arrival time) gate every spliced op on that thread.
    ///
    /// Fails with [`SimError::BadThread`] when `other` does not fit the
    /// thread range `thread_offset..self.threads()`.
    pub fn splice(&mut self, other: &Program, thread_offset: usize) -> Result<Vec<OpId>, SimError> {
        if thread_offset + other.threads > self.threads {
            return Err(SimError::BadThread {
                thread: thread_offset + other.threads.saturating_sub(1),
                threads: self.threads,
            });
        }
        let base = self.ops.len();
        let mut ids = Vec::with_capacity(other.ops.len());
        for (i, op) in other.ops.iter().enumerate() {
            let deps: Vec<OpId> = op.deps.iter().map(|d| OpId(base + d.0)).collect();
            let id = self.push_labeled(
                op.thread.0 + thread_offset,
                op.kind.clone(),
                &deps,
                op.label.clone(),
            );
            debug_assert_eq!(id.0, base + i);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Validate thread indices, dependency ordering (deps must reference
    /// earlier ops), and op well-formedness.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.thread.0 >= self.threads {
                return Err(SimError::BadThread {
                    thread: op.thread.0,
                    threads: self.threads,
                });
            }
            for d in &op.deps {
                if d.0 >= i {
                    return Err(SimError::BadDependency { op: i, dep: d.0 });
                }
            }
            op.kind.validate()?;
        }
        Ok(())
    }

    /// Sum of logical bytes over all ops — a cheap size metric for tests.
    pub fn total_logical_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.kind.logical_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_ids() {
        let mut p = Program::new(2);
        let a = p.push(0, OpKind::Delay { seconds: 0.0 }, &[]);
        let b = p.push(1, OpKind::Delay { seconds: 1.0 }, &[a]);
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(p.ops().len(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_thread() {
        let mut p = Program::new(1);
        p.push(3, OpKind::Delay { seconds: 0.0 }, &[]);
        assert!(matches!(
            p.validate(),
            Err(SimError::BadThread {
                thread: 3,
                threads: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_forward_dependency() {
        let mut p = Program::new(1);
        p.push(0, OpKind::Delay { seconds: 0.0 }, &[OpId(5)]);
        assert!(matches!(
            p.validate(),
            Err(SimError::BadDependency { op: 0, dep: 5 })
        ));
    }

    #[test]
    fn validate_rejects_self_dependency() {
        let mut p = Program::new(1);
        p.push(0, OpKind::Delay { seconds: 0.0 }, &[OpId(0)]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_malformed_ops() {
        let mut p = Program::new(1);
        p.push(0, OpKind::copy(Place::Ddr, Place::Mcdram, 0, 1.0), &[]);
        assert!(p.validate().is_err());

        let mut p = Program::new(1);
        p.push(0, OpKind::copy(Place::Ddr, Place::Mcdram, 10, 0.0), &[]);
        assert!(p.validate().is_err());

        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![],
                rate_cap: 1.0,
            },
            &[],
        );
        assert!(p.validate().is_err());

        let mut p = Program::new(1);
        p.push(0, OpKind::Delay { seconds: -1.0 }, &[]);
        assert!(p.validate().is_err());

        let mut p = Program::new(1);
        p.push(0, OpKind::Delay { seconds: f64::NAN }, &[]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn logical_bytes_accounting() {
        assert_eq!(
            OpKind::copy(Place::Ddr, Place::Mcdram, 100, 1.0).logical_bytes(),
            200
        );
        assert_eq!(
            OpKind::inplace_pass(Place::Mcdram, 50, 1.0).logical_bytes(),
            100
        );
        assert_eq!(OpKind::Delay { seconds: 1.0 }.logical_bytes(), 0);

        let mut p = Program::new(1);
        p.push(0, OpKind::copy(Place::Ddr, Place::Mcdram, 100, 1.0), &[]);
        p.push(0, OpKind::inplace_pass(Place::Ddr, 50, 1.0), &[]);
        assert_eq!(p.total_logical_bytes(), 300);
    }

    #[test]
    fn barrier_creates_one_op_per_thread() {
        let mut p = Program::new(4);
        let a = p.push(0, OpKind::Delay { seconds: 1.0 }, &[]);
        let bar = p.barrier(0..4, &[a]);
        assert_eq!(bar.len(), 4);
        p.validate().unwrap();
    }

    #[test]
    fn splice_remaps_threads_and_deps() {
        let mut job = Program::new(2);
        let a = job.push(0, OpKind::copy(Place::Ddr, Place::Mcdram, 10, 1.0), &[]);
        let _ = job.push(1, OpKind::inplace_pass(Place::Mcdram, 10, 1.0), &[a]);

        let mut combined = Program::new(5);
        // Arrival gate ahead of the job's ops on its thread block.
        combined.push(3, OpKind::Delay { seconds: 2.0 }, &[]);
        combined.push(4, OpKind::Delay { seconds: 2.0 }, &[]);
        let ids = combined.splice(&job, 3).unwrap();
        assert_eq!(ids.len(), 2);
        let spliced_a = &combined.ops()[ids[0].0];
        let spliced_b = &combined.ops()[ids[1].0];
        assert_eq!(spliced_a.thread, ThreadId(3));
        assert_eq!(spliced_b.thread, ThreadId(4));
        assert_eq!(spliced_b.deps, vec![ids[0]]);
        assert_eq!(spliced_a.kind, job.ops()[a.0].kind);
        combined.validate().unwrap();
    }

    #[test]
    fn splice_rejects_overflowing_thread_block() {
        let job = Program::new(4);
        let mut combined = Program::new(5);
        assert!(matches!(
            combined.splice(&job, 2),
            Err(SimError::BadThread { .. })
        ));
        assert!(combined.splice(&job, 1).is_ok());
    }

    #[test]
    fn splice_of_empty_program_is_a_noop() {
        let mut combined = Program::new(2);
        let ids = combined.splice(&Program::new(1), 1).unwrap();
        assert!(ids.is_empty());
        assert!(combined.ops().is_empty());
    }

    #[test]
    fn access_constructors() {
        let r = Access::read(Place::Ddr, 10);
        assert!(!r.write);
        let w = Access::write(Place::Mcdram, 10);
        assert!(w.write);
    }
}
