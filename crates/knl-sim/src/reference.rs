//! The pre-rearchitecture naive engine loop, preserved verbatim as a
//! correctness oracle.
//!
//! Compiled only with the `reference-engine` feature. The loop is the
//! classic O(threads + flows + delays)-per-event form: a fixed-point rescan
//! of every thread queue to start ops, a fresh water-filling re-arbitration
//! on every iteration, and linear min-scans for the next completion. It is
//! quadratic overall and exists so the optimized event-queue engine
//! ([`Simulator::run`]) can be differential-tested against it on random
//! programs and benchmarked against it for the tracked ≥5× throughput
//! criterion.

use std::collections::VecDeque;

use crate::bandwidth::{allocate_rates, FlowSpec};
use crate::cache::DirectMappedCache;
use crate::engine::{record, spec_len, stuck_ops, DDR, EPS_BYTES, MCD};
use crate::error::SimError;
use crate::ops::{OpKind, Program};
use crate::report::SimReport;
use crate::trace::Trace;
use crate::Simulator;

struct ActiveFlow {
    op: usize,
    remaining: f64,
    spec: FlowSpec,
    /// Extra serial latency charged after the flow drains (miss penalty).
    penalty_after: f64,
    started_at: f64,
}

struct ActiveDelay {
    op: usize,
    deadline: f64,
    started_at: f64,
}

impl Simulator {
    /// Execute `prog` with the naive reference loop. Agrees with
    /// [`Self::run`] up to floating-point event-ordering noise (≪ 1e-9
    /// relative); see the differential tests.
    pub fn run_reference(&self, prog: &Program) -> Result<SimReport, SimError> {
        Ok(self.run_inner_reference(prog, None)?.0)
    }

    /// Traced variant of [`Self::run_reference`].
    pub fn run_traced_reference(&self, prog: &Program) -> Result<(SimReport, Trace), SimError> {
        let (report, trace) = self.run_inner_reference(prog, Some(Trace::default()))?;
        Ok((report, trace.expect("trace requested")))
    }

    fn run_inner_reference(
        &self,
        prog: &Program,
        mut trace: Option<Trace>,
    ) -> Result<(SimReport, Option<Trace>), SimError> {
        prog.validate()?;
        if let Some(tr) = trace.as_mut() {
            tr.threads = prog.threads();
        }

        let cfg = self.config();
        let mut cache = if cfg.mode.has_cache() {
            Some(DirectMappedCache::new(
                cfg.effective_cache_capacity(),
                cfg.cache_segment,
            ))
        } else {
            None
        };

        let capacities = [cfg.ddr_bandwidth, cfg.effective_mcdram_bandwidth()];

        let n_ops = prog.ops().len();
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); prog.threads()];
        let mut remaining_deps = vec![0usize; n_ops];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        let mut done = vec![false; n_ops];
        for (i, op) in prog.ops().iter().enumerate() {
            queues[op.thread.0].push_back(i);
            remaining_deps[i] = op.deps.len();
            for d in &op.deps {
                dependents[d.0].push(i);
            }
        }

        let mut report = SimReport::default();
        let mut flows: Vec<ActiveFlow> = Vec::new();
        let mut delays: Vec<ActiveDelay> = Vec::new();
        let mut now = 0.0f64;
        let mut completed = 0usize;
        // Ops whose dependencies are all satisfied; a thread's front op
        // starts when it is in this state.
        let mut dep_ready = vec![false; n_ops];
        for i in 0..n_ops {
            dep_ready[i] = remaining_deps[i] == 0;
        }

        let mut busy = vec![false; prog.threads()];

        // Main event loop: (1) start every startable op — zero-delay ops
        // complete instantly and may cascade, so iterate to a fixed point;
        // (2) arbitrate bandwidth; (3) advance to the next completion.
        loop {
            loop {
                let mut progressed = false;
                for t in 0..queues.len() {
                    while !busy[t] {
                        let Some(&front) = queues[t].front() else {
                            break;
                        };
                        if !dep_ready[front] {
                            break;
                        }
                        queues[t].pop_front();
                        progressed = true;
                        let op = &prog.ops()[front];
                        match &op.kind {
                            OpKind::Delay { seconds } if *seconds <= 0.0 => {
                                // Instant completion; keep popping this thread.
                                Self::complete_op(
                                    front,
                                    now,
                                    now,
                                    &mut done,
                                    &mut completed,
                                    &mut remaining_deps,
                                    &dependents,
                                    &mut dep_ready,
                                    &mut report,
                                );
                                record(&mut trace, prog, front, now, now);
                            }
                            OpKind::Delay { seconds } => {
                                delays.push(ActiveDelay {
                                    op: front,
                                    deadline: now + seconds,
                                    started_at: now,
                                });
                                busy[t] = true;
                            }
                            kind => {
                                let (spec, penalty) =
                                    self.resolve(kind, cache.as_mut(), &mut report)?;
                                let remaining = spec_len(kind);
                                flows.push(ActiveFlow {
                                    op: front,
                                    remaining,
                                    spec,
                                    penalty_after: penalty,
                                    started_at: now,
                                });
                                busy[t] = true;
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }

            if completed == n_ops {
                break;
            }

            if flows.is_empty() && delays.is_empty() {
                return Err(SimError::Deadlock(stuck_ops(prog, &done)));
            }

            // Rate allocation for the current flow set.
            let specs: Vec<FlowSpec> = flows.iter().map(|f| f.spec.clone()).collect();
            let rates = allocate_rates(&capacities, &specs);

            // Time to the next event: the earliest flow drain (miss
            // penalties are charged afterwards as serial delays) or the
            // earliest delay expiry.
            let mut dt = f64::INFINITY;
            for (f, &r) in flows.iter().zip(&rates) {
                debug_assert!(r > 0.0, "validated ops always get positive rates");
                dt = dt.min(f.remaining / r);
            }
            for d in &delays {
                dt = dt.min(d.deadline - now);
            }
            debug_assert!(dt.is_finite() && dt >= 0.0, "dt must be finite, got {dt}");
            let dt = dt.max(0.0);

            // Record the exact (piecewise-constant) bus utilization of this
            // inter-event span.
            if dt > 0.0 {
                if let Some(tr) = trace.as_mut() {
                    let mut used = [0.0f64; 2];
                    for (f, &r) in flows.iter().zip(&rates) {
                        for &(res, coeff) in &f.spec.demand {
                            used[res] += r * coeff;
                        }
                    }
                    tr.bus.push(crate::trace::BusSegment {
                        start: now,
                        end: now + dt,
                        ddr: (used[DDR] / capacities[DDR]).min(1.0),
                        mcdram: (used[MCD] / capacities[MCD]).min(1.0),
                    });
                }
            }

            // Integrate progress and resource usage.
            for (f, &r) in flows.iter_mut().zip(&rates) {
                f.remaining -= r * dt;
                for &(res, coeff) in &f.spec.demand {
                    report.served_bytes[res] += r * coeff * dt;
                }
            }
            now += dt;

            // Complete drained flows. A flow with a pending miss penalty
            // converts into a delay.
            let mut i = 0;
            while i < flows.len() {
                if flows[i].remaining <= EPS_BYTES {
                    let f = flows.swap_remove(i);
                    if f.penalty_after > 0.0 {
                        // Thread stays busy through the serial penalty tail.
                        delays.push(ActiveDelay {
                            op: f.op,
                            deadline: now + f.penalty_after,
                            started_at: f.started_at,
                        });
                    } else {
                        busy[prog.ops()[f.op].thread.0] = false;
                        Self::complete_op(
                            f.op,
                            f.started_at,
                            now,
                            &mut done,
                            &mut completed,
                            &mut remaining_deps,
                            &dependents,
                            &mut dep_ready,
                            &mut report,
                        );
                        record(&mut trace, prog, f.op, f.started_at, now);
                    }
                } else {
                    i += 1;
                }
            }
            // Complete expired delays.
            let mut i = 0;
            while i < delays.len() {
                if delays[i].deadline <= now * (1.0 + 1e-12) + 1e-15 {
                    let d = delays.swap_remove(i);
                    busy[prog.ops()[d.op].thread.0] = false;
                    Self::complete_op(
                        d.op,
                        d.started_at,
                        now,
                        &mut done,
                        &mut completed,
                        &mut remaining_deps,
                        &dependents,
                        &mut dep_ready,
                        &mut report,
                    );
                    record(&mut trace, prog, d.op, d.started_at, now);
                } else {
                    i += 1;
                }
            }
        }

        report.makespan = now;
        if now > 0.0 {
            report.utilization[DDR] = report.served_bytes[DDR] / (capacities[DDR] * now);
            report.utilization[MCD] = report.served_bytes[MCD] / (capacities[MCD] * now);
        }
        if let Some(c) = &cache {
            report.cache = c.stats();
        }
        if let Some(tr) = trace.as_mut() {
            tr.makespan = report.makespan;
        }
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, MemMode};
    use crate::ops::Place;
    use crate::GB;

    /// Cross-check the two engines on a program exercising saturation,
    /// dependencies, barriers, delays and cache effects all at once.
    #[test]
    fn reference_and_optimized_agree_on_mixed_program() {
        for mode in [MemMode::Flat, MemMode::Cache] {
            let cfg = MachineConfig::tiny(mode);
            let mut p = Program::new(6);
            let mut prev = Vec::new();
            for round in 0u64..4 {
                let mut ids = Vec::new();
                for t in 0..6usize {
                    let kind = match (t + round as usize) % 3 {
                        0 => OpKind::Stream {
                            accesses: vec![crate::ops::Access::read(
                                Place::CachedDdr {
                                    addr: (t as u64) << 28,
                                },
                                (64 << 20) * (1 + round),
                            )],
                            rate_cap: 3.0 * GB,
                        },
                        1 => OpKind::Delay {
                            seconds: 0.01 * (t as f64 + 1.0),
                        },
                        _ => OpKind::copy(
                            Place::Ddr,
                            Place::CachedDdr {
                                addr: (t as u64) << 28,
                            },
                            (32 << 20) * (1 + round),
                            2.0 * GB,
                        ),
                    };
                    ids.push(p.push(t, kind, &prev));
                }
                prev = p.barrier(0..6, &ids);
            }
            let sim = Simulator::new(cfg);
            let fast = sim.run(&p).unwrap();
            let slow = sim.run_reference(&p).unwrap();
            let tol = 1e-9 * slow.makespan.max(1.0);
            assert!(
                (fast.makespan - slow.makespan).abs() < tol,
                "{mode:?}: fast={} slow={}",
                fast.makespan,
                slow.makespan
            );
            assert_eq!(fast.ops_executed, slow.ops_executed);
            assert_eq!(fast.traffic, slow.traffic, "{mode:?}");
            assert_eq!(fast.cache, slow.cache, "{mode:?}: start order must match");
            for r in [DDR, MCD] {
                assert!(
                    (fast.served_bytes[r] - slow.served_bytes[r]).abs() < 1.0,
                    "{mode:?} res {r}: fast={} slow={}",
                    fast.served_bytes[r],
                    slow.served_bytes[r]
                );
            }
        }
    }
}
