//! Simulated address-space allocation.
//!
//! The cache model indexes by DDR byte address, so simulated data structures
//! need concrete address ranges. [`RegionAllocator`] hands out
//! non-overlapping [`Region`]s from a level's address space using a
//! first-fit free list — enough fidelity to reproduce direct-mapped
//! aliasing between co-resident arrays, which is one of the effects the
//! paper's cache-mode results hinge on.

use crate::error::SimError;
use crate::machine::MemLevel;

/// A non-overlapping byte range within one memory level's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// The level this region lives in.
    pub level: MemLevel,
    /// Starting byte address (level-local).
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }

    /// Sub-region at `offset` of `size` bytes.
    ///
    /// # Panics
    /// Panics if the slice exceeds the region.
    pub fn slice(&self, offset: u64, size: u64) -> Region {
        assert!(
            offset.checked_add(size).is_some_and(|e| e <= self.size),
            "slice [{offset}, {offset}+{size}) out of region of {} bytes",
            self.size
        );
        Region {
            level: self.level,
            addr: self.addr + offset,
            size,
        }
    }
}

/// First-fit free-list allocator over one memory level.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    level: MemLevel,
    capacity: u64,
    /// Sorted, coalesced list of free `(addr, size)` holes.
    free: Vec<(u64, u64)>,
    allocated: u64,
}

impl RegionAllocator {
    /// Allocator over `[0, capacity)` of `level`.
    pub fn new(level: MemLevel, capacity: u64) -> Self {
        let free = if capacity > 0 {
            vec![(0, capacity)]
        } else {
            Vec::new()
        };
        RegionAllocator {
            level,
            capacity,
            free,
            allocated: 0,
        }
    }

    /// The level this allocator manages.
    pub fn level(&self) -> MemLevel {
        self.level
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes currently free (may be fragmented).
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Allocate `size` bytes, optionally aligned to `align` (a power of two
    /// or 1). First fit.
    pub fn alloc_aligned(&mut self, size: u64, align: u64) -> Result<Region, SimError> {
        assert!(
            align.is_power_of_two() || align == 1,
            "alignment must be a power of two"
        );
        if size == 0 {
            return Err(SimError::BadOp("zero-byte allocation".into()));
        }
        for i in 0..self.free.len() {
            let (haddr, hsize) = self.free[i];
            let aligned = haddr.next_multiple_of(align);
            let pad = aligned - haddr;
            if hsize >= pad + size {
                // Carve [aligned, aligned+size) out of the hole.
                self.free.remove(i);
                if pad > 0 {
                    self.free.insert(i, (haddr, pad));
                }
                let tail = hsize - pad - size;
                if tail > 0 {
                    let at = if pad > 0 { i + 1 } else { i };
                    self.free.insert(at, (aligned + size, tail));
                }
                self.allocated += size;
                return Ok(Region {
                    level: self.level,
                    addr: aligned,
                    size,
                });
            }
        }
        Err(SimError::OutOfMemory {
            level: self.level,
            requested: size,
            available: self.available(),
        })
    }

    /// Allocate `size` bytes with no alignment requirement.
    pub fn alloc(&mut self, size: u64) -> Result<Region, SimError> {
        self.alloc_aligned(size, 1)
    }

    /// Return a region to the free list, coalescing neighbours.
    ///
    /// # Panics
    /// Panics if the region belongs to a different level or overlaps the
    /// free list (double free).
    pub fn free(&mut self, region: Region) {
        assert_eq!(region.level, self.level, "region freed to wrong level");
        assert!(
            region.end() <= self.capacity,
            "region outside address space"
        );
        let pos = self.free.partition_point(|&(a, _)| a < region.addr);
        if pos > 0 {
            let (pa, ps) = self.free[pos - 1];
            assert!(
                pa + ps <= region.addr,
                "double free / overlap with previous hole"
            );
        }
        if pos < self.free.len() {
            assert!(
                region.end() <= self.free[pos].0,
                "double free / overlap with next hole"
            );
        }
        self.free.insert(pos, (region.addr, region.size));
        self.allocated -= region.size;
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            let (na, ns) = self.free.remove(pos + 1);
            debug_assert_eq!(self.free[pos].0 + self.free[pos].1, na);
            self.free[pos].1 += ns;
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            let (_, ns) = self.free.remove(pos);
            self.free[pos - 1].1 += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> RegionAllocator {
        RegionAllocator::new(MemLevel::Ddr, 1000)
    }

    #[test]
    fn alloc_and_accounting() {
        let mut a = alloc();
        let r1 = a.alloc(100).unwrap();
        let r2 = a.alloc(200).unwrap();
        assert_eq!(r1.addr, 0);
        assert_eq!(r2.addr, 100);
        assert_eq!(a.allocated(), 300);
        assert_eq!(a.available(), 700);
        assert_eq!(r2.end(), 300);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut a = alloc();
        a.alloc(900).unwrap();
        let err = a.alloc(200).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                requested: 200,
                available: 100,
                ..
            }
        ));
    }

    #[test]
    fn free_coalesces_and_allows_reuse() {
        let mut a = alloc();
        let r1 = a.alloc(400).unwrap();
        let r2 = a.alloc(400).unwrap();
        a.free(r1);
        a.free(r2);
        assert_eq!(a.allocated(), 0);
        // A single coalesced hole can satisfy the full capacity.
        let big = a.alloc(1000).unwrap();
        assert_eq!(big.addr, 0);
    }

    #[test]
    fn free_out_of_order_coalesces() {
        let mut a = alloc();
        let r1 = a.alloc(100).unwrap();
        let r2 = a.alloc(100).unwrap();
        let r3 = a.alloc(100).unwrap();
        a.free(r2);
        a.free(r1);
        a.free(r3);
        assert!(a.alloc(1000).is_ok());
    }

    #[test]
    fn first_fit_reuses_holes() {
        let mut a = alloc();
        let r1 = a.alloc(100).unwrap();
        let _r2 = a.alloc(100).unwrap();
        a.free(r1);
        let r3 = a.alloc(50).unwrap();
        assert_eq!(r3.addr, 0, "first fit takes the first hole");
    }

    #[test]
    fn aligned_allocation() {
        let mut a = alloc();
        a.alloc(10).unwrap();
        let r = a.alloc_aligned(100, 64).unwrap();
        assert_eq!(r.addr % 64, 0);
        assert_eq!(r.addr, 64);
        // The pad hole [10, 64) remains usable.
        let small = a.alloc(54).unwrap();
        assert_eq!(small.addr, 10);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = alloc();
        assert!(a.alloc(0).is_err());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = alloc();
        let r = a.alloc(100).unwrap();
        a.free(r);
        a.free(r);
    }

    #[test]
    #[should_panic(expected = "wrong level")]
    fn wrong_level_free_panics() {
        let mut a = alloc();
        a.free(Region {
            level: MemLevel::Mcdram,
            addr: 0,
            size: 10,
        });
    }

    #[test]
    fn slice_stays_in_bounds() {
        let r = Region {
            level: MemLevel::Ddr,
            addr: 100,
            size: 50,
        };
        let s = r.slice(10, 20);
        assert_eq!(s.addr, 110);
        assert_eq!(s.size, 20);
        assert_eq!(s.level, MemLevel::Ddr);
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn slice_out_of_bounds_panics() {
        let r = Region {
            level: MemLevel::Ddr,
            addr: 100,
            size: 50,
        };
        r.slice(40, 20);
    }

    #[test]
    fn zero_capacity_allocator_is_always_oom() {
        let mut a = RegionAllocator::new(MemLevel::Mcdram, 0);
        assert!(a.alloc(1).is_err());
        assert_eq!(a.available(), 0);
    }
}
