//! The discrete-event execution engine.
//!
//! [`Simulator::run`] executes a [`Program`] against a [`MachineConfig`]:
//! ops become *flows* competing for DDR and MCDRAM bandwidth under
//! max–min-fair arbitration ([`crate::bandwidth`]); virtual time advances
//! from one flow completion (or delay expiry) to the next; cache-mode
//! accesses are resolved through the direct-mapped cache model at op start.
//!
//! Determinism: given the same config and program the result is bit-for-bit
//! identical — there is no randomness and no dependence on host timing.

use std::collections::VecDeque;

use crate::bandwidth::{allocate_rates, FlowSpec};
use crate::cache::DirectMappedCache;
use crate::error::SimError;
use crate::machine::{MachineConfig, MemLevel};
use crate::ops::{Access, OpKind, Place, Program};
use crate::report::{LevelTraffic, SimReport};
use crate::trace::{OpRecord, Trace};

const DDR: usize = 0;
const MCD: usize = 1;
/// Completion tolerance in bytes; sub-nanosecond at GB/s rates.
const EPS_BYTES: f64 = 1e-3;

/// Executes programs on a simulated machine.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: MachineConfig,
}

struct ActiveFlow {
    op: usize,
    remaining: f64,
    spec: FlowSpec,
    /// Extra serial latency charged after the flow drains (miss penalty).
    penalty_after: f64,
    started_at: f64,
}

struct ActiveDelay {
    op: usize,
    deadline: f64,
    started_at: f64,
}

impl Simulator {
    /// Create a simulator for the given machine. Validates the config.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine config");
        Simulator { cfg }
    }

    /// Fallible constructor variant.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        Ok(Simulator { cfg })
    }

    /// The machine this simulator models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Execute `prog` from a cold machine state (empty cache) and return the
    /// report.
    pub fn run(&self, prog: &Program) -> Result<SimReport, SimError> {
        Ok(self.run_inner(prog, None)?.0)
    }

    /// Like [`Self::run`], additionally recording a per-op execution
    /// [`Trace`] (start/end times, thread, label).
    pub fn run_traced(&self, prog: &Program) -> Result<(SimReport, Trace), SimError> {
        let (report, trace) = self.run_inner(prog, Some(Trace::default()))?;
        Ok((report, trace.expect("trace requested")))
    }

    /// Validate `prog` against this machine without executing anything.
    ///
    /// [`Self::run`] reports mode mismatches only when the offending op
    /// *starts*, possibly deep into a long simulation; `preflight` checks
    /// the whole program up front:
    ///
    /// * structural validity ([`Program::validate`]);
    /// * every `Copy` endpoint is addressable in the machine's memory mode
    ///   (the same rule `run` enforces per-op);
    /// * the program does not ask for more threads than the machine has.
    pub fn preflight(&self, prog: &Program) -> Result<(), SimError> {
        prog.validate()?;
        if prog.threads() > self.cfg.total_threads() {
            return Err(SimError::InvalidConfig(format!(
                "program uses {} threads but the machine has {}",
                prog.threads(),
                self.cfg.total_threads()
            )));
        }
        if self.cfg.addressable_mcdram() == 0 {
            for op in prog.ops() {
                if let OpKind::Copy { src, dst, .. } = &op.kind {
                    if *src == Place::Mcdram || *dst == Place::Mcdram {
                        return Err(SimError::LevelNotAddressable(MemLevel::Mcdram));
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Self::preflight`] then [`Self::run`]: execution starts only if the
    /// whole program is valid for this machine.
    pub fn run_checked(&self, prog: &Program) -> Result<SimReport, SimError> {
        self.preflight(prog)?;
        self.run(prog)
    }

    fn run_inner(
        &self,
        prog: &Program,
        mut trace: Option<Trace>,
    ) -> Result<(SimReport, Option<Trace>), SimError> {
        prog.validate()?;
        if let Some(tr) = trace.as_mut() {
            tr.threads = prog.threads();
        }

        let mut cache = if self.cfg.mode.has_cache() {
            Some(DirectMappedCache::new(
                self.cfg.effective_cache_capacity(),
                self.cfg.cache_segment,
            ))
        } else {
            None
        };

        let capacities = [
            self.cfg.ddr_bandwidth,
            self.cfg.effective_mcdram_bandwidth(),
        ];

        let n_ops = prog.ops().len();
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); prog.threads()];
        let mut remaining_deps = vec![0usize; n_ops];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        let mut done = vec![false; n_ops];
        for (i, op) in prog.ops().iter().enumerate() {
            queues[op.thread.0].push_back(i);
            remaining_deps[i] = op.deps.len();
            for d in &op.deps {
                dependents[d.0].push(i);
            }
        }

        let mut report = SimReport::default();
        let mut flows: Vec<ActiveFlow> = Vec::new();
        let mut delays: Vec<ActiveDelay> = Vec::new();
        let mut now = 0.0f64;
        let mut completed = 0usize;
        // Ops whose dependencies are all satisfied; a thread's front op
        // starts when it is in this state.
        let mut dep_ready = vec![false; n_ops];
        for i in 0..n_ops {
            dep_ready[i] = remaining_deps[i] == 0;
        }

        let mut busy = vec![false; prog.threads()];

        // Main event loop: (1) start every startable op — zero-delay ops
        // complete instantly and may cascade, so iterate to a fixed point;
        // (2) arbitrate bandwidth; (3) advance to the next completion.
        loop {
            loop {
                let mut progressed = false;
                for t in 0..queues.len() {
                    while !busy[t] {
                        let Some(&front) = queues[t].front() else {
                            break;
                        };
                        if !dep_ready[front] {
                            break;
                        }
                        queues[t].pop_front();
                        progressed = true;
                        let op = &prog.ops()[front];
                        match &op.kind {
                            OpKind::Delay { seconds } if *seconds <= 0.0 => {
                                // Instant completion; keep popping this thread.
                                Self::complete_op(
                                    front,
                                    now,
                                    now,
                                    &mut done,
                                    &mut completed,
                                    &mut remaining_deps,
                                    &dependents,
                                    &mut dep_ready,
                                    &mut report,
                                );
                                record(&mut trace, prog, front, now, now);
                            }
                            OpKind::Delay { seconds } => {
                                delays.push(ActiveDelay {
                                    op: front,
                                    deadline: now + seconds,
                                    started_at: now,
                                });
                                busy[t] = true;
                            }
                            kind => {
                                let (spec, penalty) =
                                    self.resolve(kind, cache.as_mut(), &mut report)?;
                                let remaining = spec_len(kind);
                                flows.push(ActiveFlow {
                                    op: front,
                                    remaining,
                                    spec,
                                    penalty_after: penalty,
                                    started_at: now,
                                });
                                busy[t] = true;
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }

            if completed == n_ops {
                break;
            }

            if flows.is_empty() && delays.is_empty() {
                let stuck: Vec<usize> = (0..n_ops).filter(|&i| !done[i]).take(8).collect();
                return Err(SimError::Deadlock(stuck));
            }

            // Rate allocation for the current flow set.
            let specs: Vec<FlowSpec> = flows.iter().map(|f| f.spec.clone()).collect();
            let rates = allocate_rates(&capacities, &specs);

            // Time to the next event: the earliest flow drain (miss
            // penalties are charged afterwards as serial delays) or the
            // earliest delay expiry.
            let mut dt = f64::INFINITY;
            for (f, &r) in flows.iter().zip(&rates) {
                debug_assert!(r > 0.0, "validated ops always get positive rates");
                dt = dt.min(f.remaining / r);
            }
            for d in &delays {
                dt = dt.min(d.deadline - now);
            }
            debug_assert!(dt.is_finite() && dt >= 0.0, "dt must be finite, got {dt}");
            let dt = dt.max(0.0);

            // Record the exact (piecewise-constant) bus utilization of this
            // inter-event span.
            if dt > 0.0 {
                if let Some(tr) = trace.as_mut() {
                    let mut used = [0.0f64; 2];
                    for (f, &r) in flows.iter().zip(&rates) {
                        for &(res, coeff) in &f.spec.demand {
                            used[res] += r * coeff;
                        }
                    }
                    tr.bus.push(crate::trace::BusSegment {
                        start: now,
                        end: now + dt,
                        ddr: (used[DDR] / capacities[DDR]).min(1.0),
                        mcdram: (used[MCD] / capacities[MCD]).min(1.0),
                    });
                }
            }

            // Integrate progress and resource usage.
            for (f, &r) in flows.iter_mut().zip(&rates) {
                f.remaining -= r * dt;
                for &(res, coeff) in &f.spec.demand {
                    report.served_bytes[res] += r * coeff * dt;
                }
            }
            now += dt;

            // Complete drained flows. A flow with a pending miss penalty
            // converts into a delay.
            let mut i = 0;
            while i < flows.len() {
                if flows[i].remaining <= EPS_BYTES {
                    let f = flows.swap_remove(i);
                    if f.penalty_after > 0.0 {
                        // Thread stays busy through the serial penalty tail.
                        delays.push(ActiveDelay {
                            op: f.op,
                            deadline: now + f.penalty_after,
                            started_at: f.started_at,
                        });
                    } else {
                        busy[prog.ops()[f.op].thread.0] = false;
                        Self::complete_op(
                            f.op,
                            f.started_at,
                            now,
                            &mut done,
                            &mut completed,
                            &mut remaining_deps,
                            &dependents,
                            &mut dep_ready,
                            &mut report,
                        );
                        record(&mut trace, prog, f.op, f.started_at, now);
                    }
                } else {
                    i += 1;
                }
            }
            // Complete expired delays.
            let mut i = 0;
            while i < delays.len() {
                if delays[i].deadline <= now * (1.0 + 1e-12) + 1e-15 {
                    let d = delays.swap_remove(i);
                    busy[prog.ops()[d.op].thread.0] = false;
                    Self::complete_op(
                        d.op,
                        d.started_at,
                        now,
                        &mut done,
                        &mut completed,
                        &mut remaining_deps,
                        &dependents,
                        &mut dep_ready,
                        &mut report,
                    );
                    record(&mut trace, prog, d.op, d.started_at, now);
                } else {
                    i += 1;
                }
            }
        }

        report.makespan = now;
        if now > 0.0 {
            report.utilization[DDR] = report.served_bytes[DDR] / (capacities[DDR] * now);
            report.utilization[MCD] = report.served_bytes[MCD] / (capacities[MCD] * now);
        }
        if let Some(c) = &cache {
            report.cache = c.stats();
        }
        if let Some(tr) = trace.as_mut() {
            tr.makespan = report.makespan;
        }
        Ok((report, trace))
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_op(
        op: usize,
        started_at: f64,
        now: f64,
        done: &mut [bool],
        completed: &mut usize,
        remaining_deps: &mut [usize],
        dependents: &[Vec<usize>],
        dep_ready: &mut [bool],
        report: &mut SimReport,
    ) {
        debug_assert!(!done[op]);
        done[op] = true;
        *completed += 1;
        report.ops_executed += 1;
        report.thread_busy += now - started_at;
        for &d in &dependents[op] {
            remaining_deps[d] -= 1;
            if remaining_deps[d] == 0 {
                dep_ready[d] = true;
            }
        }
    }

    /// Resolve an op's accesses into a flow spec (demand coefficients per
    /// logical byte + rate cap), charging traffic counters and computing the
    /// serial miss-latency penalty.
    fn resolve(
        &self,
        kind: &OpKind,
        mut cache: Option<&mut DirectMappedCache>,
        report: &mut SimReport,
    ) -> Result<(FlowSpec, f64), SimError> {
        let mut ddr_bytes = 0u64;
        let mut mcd_bytes = 0u64;
        let mut misses = 0u64;

        // `Copy` ops place data, so their MCDRAM endpoints must be
        // addressable in the current mode. `Stream` accesses are bus-traffic
        // descriptors (software layers use explicit `Mcdram` accesses to
        // model analytically-derived cache hits), so they are exempt.
        let placement_checked = matches!(kind, OpKind::Copy { .. });
        let mut charge = |access: &Access,
                          cache: &mut Option<&mut DirectMappedCache>,
                          report: &mut SimReport|
         -> Result<(), SimError> {
            match access.place {
                Place::Ddr => {
                    ddr_bytes += access.bytes;
                    bump(&mut report.traffic[DDR], access.bytes, access.write);
                }
                Place::Mcdram => {
                    if placement_checked && self.cfg.addressable_mcdram() == 0 {
                        return Err(SimError::LevelNotAddressable(MemLevel::Mcdram));
                    }
                    mcd_bytes += access.bytes;
                    bump(&mut report.traffic[MCD], access.bytes, access.write);
                }
                Place::CachedDdr { addr } => match cache.as_deref_mut() {
                    Some(c) => {
                        let t = c.access(addr, access.bytes, access.write);
                        misses += t.miss_count;
                        ddr_bytes += t.traffic_on(MemLevel::Ddr);
                        mcd_bytes += t.traffic_on(MemLevel::Mcdram);
                        // DDR: miss fills are reads; writebacks are writes.
                        report.traffic[DDR].read += t.miss_bytes;
                        report.traffic[DDR].written += t.writeback_bytes;
                        // MCDRAM: hits follow the access direction; fills are
                        // writes; writeback sources are reads.
                        bump(&mut report.traffic[MCD], t.hit_bytes, access.write);
                        report.traffic[MCD].written += t.fill_bytes;
                        report.traffic[MCD].read += t.writeback_bytes;
                    }
                    None => {
                        // Flat mode: a "cached DDR" access is a plain DDR
                        // access. This lets one program run in every mode
                        // (the paper's MLM-ddr variant is exactly this).
                        ddr_bytes += access.bytes;
                        bump(&mut report.traffic[DDR], access.bytes, access.write);
                    }
                },
            }
            Ok(())
        };

        let (logical, cap) = match kind {
            OpKind::Copy {
                src,
                dst,
                bytes,
                rate_cap,
            } => {
                charge(&Access::read(*src, *bytes), &mut cache, report)?;
                charge(&Access::write(*dst, *bytes), &mut cache, report)?;
                (*bytes as f64, *rate_cap)
            }
            OpKind::Stream { accesses, rate_cap } => {
                for a in accesses {
                    charge(a, &mut cache, report)?;
                }
                let logical: u64 = accesses.iter().map(|a| a.bytes).sum();
                (logical as f64, *rate_cap)
            }
            OpKind::Delay { .. } => unreachable!("delays never reach resolve()"),
        };

        let mut demand = Vec::with_capacity(2);
        if ddr_bytes > 0 {
            demand.push((DDR, ddr_bytes as f64 / logical));
        }
        if mcd_bytes > 0 {
            demand.push((MCD, mcd_bytes as f64 / logical));
        }
        let penalty = misses as f64 * self.cfg.cache_miss_penalty;
        Ok((FlowSpec { demand, cap }, penalty))
    }
}

/// Append a trace record if tracing is enabled.
fn record(trace: &mut Option<Trace>, prog: &Program, op: usize, start: f64, end: f64) {
    if let Some(tr) = trace.as_mut() {
        tr.ops.push(OpRecord {
            op,
            thread: prog.ops()[op].thread.0,
            start,
            end,
            label: prog.ops()[op].label.clone(),
        });
    }
}

#[inline]
fn bump(t: &mut LevelTraffic, bytes: u64, write: bool) {
    if write {
        t.written += bytes;
    } else {
        t.read += bytes;
    }
}

/// Flow length in logical bytes for the rate cap to act on.
fn spec_len(kind: &OpKind) -> f64 {
    match kind {
        OpKind::Copy { bytes, .. } => *bytes as f64,
        OpKind::Stream { accesses, .. } => accesses.iter().map(|a| a.bytes).sum::<u64>() as f64,
        OpKind::Delay { .. } => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MemMode;
    use crate::GB;

    fn flat() -> MachineConfig {
        MachineConfig::tiny(MemMode::Flat) // DDR 10 GB/s, MCDRAM 40 GB/s, copy 1 GB/s, comp 2 GB/s
    }

    #[test]
    fn single_copy_capped_by_thread_rate() {
        let cfg = flat();
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(
                Place::Ddr,
                Place::Mcdram,
                2_000_000_000,
                cfg.per_thread_copy_bw,
            ),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9, "2 GB at 1 GB/s");
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, 2_000_000_000);
        assert_eq!(r.traffic_on(MemLevel::Mcdram).written, 2_000_000_000);
    }

    #[test]
    fn many_copy_threads_saturate_ddr() {
        let cfg = flat();
        let n = 32; // 32 threads * 1 GB/s = 32 GB/s demand > 10 GB/s DDR
        let mut p = Program::new(n);
        for t in 0..n {
            p.push(
                t,
                OpKind::copy(
                    Place::Ddr,
                    Place::Mcdram,
                    1_000_000_000,
                    cfg.per_thread_copy_bw,
                ),
                &[],
            );
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // 32 GB moved at DDR-bound 10 GB/s.
        assert!((r.makespan - 3.2).abs() < 1e-6, "makespan={}", r.makespan);
        assert!(r.utilization[DDR] > 0.999);
    }

    #[test]
    fn sequential_ops_on_one_thread_serialize() {
        let cfg = flat();
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            0,
            OpKind::copy(Place::Mcdram, Place::Ddr, 1_000_000_000, 1.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn independent_threads_overlap() {
        let cfg = flat();
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::inplace_pass(Place::Mcdram, 1_000_000_000, 2.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Copy takes 1 s; compute takes 2 GB of traffic at 2 GB/s = 1 s;
        // neither saturates anything; fully overlapped.
        assert!((r.makespan - 1.0).abs() < 1e-9, "makespan={}", r.makespan);
        assert!((r.thread_busy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize_across_threads() {
        let cfg = flat();
        let mut p = Program::new(2);
        let a = p.push(0, OpKind::Delay { seconds: 1.0 }, &[]);
        p.push(1, OpKind::Delay { seconds: 1.0 }, &[a]);
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_joins_phases() {
        let cfg = flat();
        let mut p = Program::new(3);
        let mut phase1 = Vec::new();
        for t in 0..3 {
            phase1.push(p.push(
                t,
                OpKind::Delay {
                    seconds: (t + 1) as f64 * 0.5,
                },
                &[],
            ));
        }
        let bar = p.barrier(0..3, &phase1);
        for t in 0..3 {
            p.push(t, OpKind::Delay { seconds: 0.5 }, &bar);
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Slowest phase-1 op is 1.5 s; then 0.5 s.
        assert!((r.makespan - 2.0).abs() < 1e-12, "makespan={}", r.makespan);
    }

    #[test]
    fn zero_delay_barriers_cost_nothing() {
        let cfg = flat();
        let mut p = Program::new(4);
        let mut deps = Vec::new();
        for _ in 0..10 {
            deps = p.barrier(0..4, &deps);
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.ops_executed, 40);
    }

    #[test]
    fn mcdram_not_addressable_in_cache_mode() {
        let cfg = MachineConfig::tiny(MemMode::Cache);
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1000, 1.0 * GB),
            &[],
        );
        let err = Simulator::new(cfg).run(&p).unwrap_err();
        assert_eq!(err, SimError::LevelNotAddressable(MemLevel::Mcdram));
    }

    #[test]
    fn cached_access_warms_up() {
        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_mode_efficiency = 1.0;
        let bytes = 32 << 20; // half the 64 MiB cache
        let mut p = Program::new(1);
        let a = p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[a],
        );
        let r = Simulator::new(cfg.clone()).run(&p).unwrap();
        // First pass: DDR-bound at 10 GB/s (plus concurrent fill on MCDRAM).
        // Second pass: all hits, MCDRAM at 40 GB/s.
        let b = bytes as f64;
        let expect = b / (10.0 * GB) + b / (40.0 * GB);
        assert!(
            (r.makespan - expect).abs() / expect < 1e-6,
            "makespan={}",
            r.makespan
        );
        assert_eq!(r.cache.miss_bytes, bytes);
        assert_eq!(r.cache.hit_bytes, bytes);
        // DDR traffic: only the cold pass.
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, bytes);
    }

    #[test]
    fn cached_place_degrades_to_ddr_in_flat_mode() {
        let cfg = flat();
        let bytes = 1_000_000_000u64;
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 0.1).abs() < 1e-9, "1 GB read at 10 GB/s DDR");
        assert_eq!(r.cache.accessed_bytes, 0);
    }

    #[test]
    fn miss_penalty_adds_serial_latency() {
        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_mode_efficiency = 1.0;
        cfg.cache_miss_penalty = 1e-3; // 1 ms per 1 MiB segment miss
        let bytes: u64 = 8 << 20; // 8 segments
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        let transfer = bytes as f64 / (10.0 * GB);
        let expect = transfer + 8.0 * 1e-3;
        assert!(
            (r.makespan - expect).abs() < 1e-9,
            "makespan={}",
            r.makespan
        );
    }

    #[test]
    fn compute_threads_share_mcdram_with_copy_threads() {
        // The Eq. 5 scenario as an end-to-end engine test.
        let cfg = MachineConfig::knl_7250(MemMode::Flat);
        let p_copy = 16usize;
        let p_comp = 64usize;
        let copy_bytes = 1_000_000_000u64;
        let comp_traffic = 2_000_000_000u64;
        let mut p = Program::new(p_copy + p_comp);
        for t in 0..p_copy {
            p.push(
                t,
                OpKind::copy(
                    Place::Ddr,
                    Place::Mcdram,
                    copy_bytes,
                    cfg.per_thread_copy_bw,
                ),
                &[],
            );
        }
        for t in 0..p_comp {
            p.push(
                p_copy + t,
                OpKind::inplace_pass(Place::Mcdram, comp_traffic / 2, cfg.per_thread_compute_bw),
                &[],
            );
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Copies: 16 * 4.8 = 76.8 GB/s (< 90), each finishes 1 GB in 0.2083 s.
        // Compute: shares 400 - 76.8 = 323.2 GB/s among 64 threads = 5.05
        // GB/s each (< 6.78 cap) while copies run.
        let copy_t = copy_bytes as f64 / 4.8e9;
        assert!(r.makespan > copy_t, "compute outlasts copies");
        // After copies end, compute threads run at their 6.78 cap (64*6.78=434>400 → 6.25).
        let comp_during = (400e9 - 76.8e9) / 64.0;
        let progressed = comp_during * copy_t;
        let left = comp_traffic as f64 - progressed;
        let after_rate = 400e9 / 64.0; // capped by MCDRAM sharing
        let expect = copy_t + left / after_rate;
        assert!(
            (r.makespan - expect).abs() / expect < 1e-6,
            "makespan={} expect={expect}",
            r.makespan
        );
    }

    #[test]
    fn served_bytes_match_traffic_counters() {
        let cfg = flat();
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 500_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::inplace_pass(Place::Ddr, 250_000_000, 2.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        let ddr_total = r.traffic_on(MemLevel::Ddr).total() as f64;
        let mcd_total = r.traffic_on(MemLevel::Mcdram).total() as f64;
        assert!((r.served_bytes[DDR] - ddr_total).abs() < 1.0);
        assert!((r.served_bytes[MCD] - mcd_total).abs() < 1.0);
    }

    #[test]
    fn empty_program_runs_instantly() {
        let r = Simulator::new(flat()).run(&Program::new(4)).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.ops_executed, 0);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = Program::new(1);
        p.push(5, OpKind::Delay { seconds: 0.0 }, &[]);
        assert!(Simulator::new(flat()).run(&p).is_err());
    }

    #[test]
    fn hybrid_mode_allows_both_flat_mcdram_and_cached_ddr() {
        let mut cfg = MachineConfig::tiny(MemMode::Hybrid {
            cache_fraction: 0.5,
        });
        cfg.cache_mode_efficiency = 1.0;
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1 << 20, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 1 << 24 }, 1 << 20)],
                rate_cap: 1.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!(r.makespan > 0.0);
        assert!(r.cache.accessed_bytes > 0);
        assert!(r.traffic_on(MemLevel::Mcdram).total() > 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_intervals() {
        let cfg = flat();
        let mut p = Program::new(2);
        let a = p.push_labeled(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
            Some("copy-in".into()),
        );
        p.push(1, OpKind::Delay { seconds: 0.25 }, &[a]);
        let sim = Simulator::new(cfg);
        let plain = sim.run(&p).unwrap();
        let (traced, trace) = sim.run_traced(&p).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb results");
        assert_eq!(trace.ops.len(), 2);
        assert_eq!(trace.threads, 2);
        assert!((trace.makespan - 1.25).abs() < 1e-9);
        let copy = trace.ops.iter().find(|r| r.op == 0).unwrap();
        assert_eq!(copy.label.as_deref(), Some("copy-in"));
        assert!((copy.start - 0.0).abs() < 1e-12);
        assert!((copy.end - 1.0).abs() < 1e-9);
        let delay = trace.ops.iter().find(|r| r.op == 1).unwrap();
        assert!((delay.start - 1.0).abs() < 1e-9);
        assert!((delay.end - 1.25).abs() < 1e-9);
        // Derived views.
        assert!((trace.thread_busy_fraction(0) - 0.8).abs() < 1e-9);
        assert_eq!(trace.concurrency_at(0.5), 1);
        let g = trace.gantt(0..2, 10);
        assert_eq!(g.lines().count(), 2);
        // Exact bus timeline: the copy runs at 1 GB/s on a 10 GB/s DDR bus
        // for the first second, then the bus idles during the delay.
        assert!(!trace.bus.is_empty());
        assert!((trace.bus_utilization(0.0, 1.0, true) - 0.1).abs() < 1e-9);
        assert!(trace.bus_utilization(1.0, 1.25, true) < 1e-12);
        let spark = trace.bus_sparkline(true, 10);
        assert_eq!(spark.chars().count(), 10);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let cfg = MachineConfig::knl_7250(MemMode::Cache);
        let mut p = Program::new(8);
        for t in 0..8 {
            p.push(
                t,
                OpKind::Stream {
                    accesses: vec![Access::read(
                        Place::CachedDdr {
                            addr: (t as u64) << 30,
                        },
                        1 << 28,
                    )],
                    rate_cap: 6.78 * GB,
                },
                &[],
            );
        }
        let sim = Simulator::new(cfg);
        let a = sim.run(&p).unwrap();
        let b = sim.run(&p).unwrap();
        assert_eq!(a, b);
    }
}
