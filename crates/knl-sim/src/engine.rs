//! The discrete-event execution engine.
//!
//! [`Simulator::run`] executes a [`Program`] against a [`MachineConfig`]:
//! ops become *flows* competing for DDR and MCDRAM bandwidth under
//! max–min-fair arbitration ([`crate::bandwidth`]); virtual time advances
//! from one flow completion (or delay expiry) to the next; cache-mode
//! accesses are resolved through the direct-mapped cache model at op start.
//!
//! ## Engine architecture
//!
//! The engine is an indexed-event-queue DES core (see DESIGN.md §20):
//!
//! * **Event heap** — a binary min-heap keyed by `(time, seq)` (total order
//!   on `f64` via `total_cmp`, monotone sequence number as a stable
//!   tie-break) holds delay expiries and *predicted* flow-drain times.
//! * **Lazy invalidation** — drain predictions carry the flow's slab
//!   generation and a per-flow prediction counter; when a rate epoch
//!   changes a flow's rate, the counter is bumped and a new prediction
//!   pushed, while the stale heap entry is simply skipped when popped.
//! * **Ready worklist** — startable ops are discovered incrementally: op
//!   completion enqueues exactly the threads whose front op may have
//!   become startable, replacing the all-threads fixed-point rescan. The
//!   worklist is drained in ascending thread order with a wrap-around
//!   cursor, reproducing the reference loop's start order bit-for-bit
//!   (start order matters in cache mode: ops mutate the direct-mapped
//!   cache model when they start).
//! * **Rate epochs** — the max–min-fair water-filling runs only when the
//!   *set* of active flows changes; all same-timestamp completions and
//!   starts coalesce into one re-arbitration. Flow progress integrates
//!   lazily: `remaining` is materialized only when the flow's own rate
//!   changes or it completes.
//! * **Slab storage** — active flows live in a generation-tagged
//!   [`crate::slab::Slab`]; no per-flow allocation once the slab is warm.
//!
//! The pre-rearchitecture loop is preserved verbatim behind the
//! `reference-engine` feature ([`Simulator::run_reference`]) and the two
//! are differential-tested on random programs.
//!
//! Determinism: given the same config and program the result is bit-for-bit
//! identical — there is no randomness and no dependence on host timing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::bandwidth::{Arbiter, FlowSpec};
use crate::cache::DirectMappedCache;
use crate::error::{SimError, StuckOp};
use crate::machine::{MachineConfig, MemLevel};
use crate::ops::{Access, OpKind, Place, Program};
use crate::report::{LevelTraffic, SimReport};
use crate::slab::{Key, Slab};
use crate::trace::{BusSegment, OpRecord, Trace};

pub(crate) const DDR: usize = 0;
pub(crate) const MCD: usize = 1;
/// Completion tolerance in bytes; sub-nanosecond at GB/s rates.
pub(crate) const EPS_BYTES: f64 = 1e-3;

/// Executes programs on a simulated machine.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: MachineConfig,
}

/// Internal engine counters, exposed for benchmarks and regression tests.
///
/// Returned by [`Simulator::run_stats`]. The counters describe *how* the
/// engine executed a program, not what the program did; they are not part
/// of the simulation result and two engines may legitimately disagree on
/// them while agreeing on the [`SimReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Timeline events processed (flow drains + delay expiries).
    pub events: u64,
    /// Zero-delay ops completed inline during ready-queue draining.
    pub instant_ops: u64,
    /// Rate epochs: re-arbitrations triggered by a change of the active
    /// flow set. Same-timestamp cascades coalesce into one epoch.
    pub rate_recomputes: u64,
    /// Epochs that needed the full water-filling (demand exceeded some
    /// capacity); the rest took the everyone-at-cap fast path.
    pub full_recomputes: u64,
    /// Lazily-invalidated heap entries skipped on pop.
    pub stale_events: u64,
    /// High-water mark of the event heap.
    pub heap_peak: usize,
}

/// An active flow in the slab: a started `Copy`/`Stream` op draining its
/// logical bytes at the current epoch's rate.
struct FlowSlot {
    op: usize,
    /// Logical bytes left as of `last_sync` (lazily integrated).
    remaining: f64,
    /// Rate assigned by the current epoch (0 until the first epoch).
    rate: f64,
    /// Virtual time at which `remaining` was last materialized.
    last_sync: f64,
    /// Prediction generation; drain events for older generations are stale.
    pred: u32,
    /// Position in the dense `active` key list (for O(1) swap-removal).
    active_pos: usize,
    /// Extra serial latency charged after the flow drains (miss penalty).
    penalty_after: f64,
    started_at: f64,
    spec: FlowSpec,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Predicted drain of the flow at `key`; valid only while the slab
    /// entry is alive *and* its prediction generation still equals `pred`.
    Drain { key: Key, pred: u32 },
    /// A delay (or post-drain miss-penalty tail) expires. Never stale.
    Expiry { op: usize, started_at: f64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl Simulator {
    /// Create a simulator for the given machine. Validates the config.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine config");
        Simulator { cfg }
    }

    /// Fallible constructor variant.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        Ok(Simulator { cfg })
    }

    /// The machine this simulator models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Execute `prog` from a cold machine state (empty cache) and return the
    /// report.
    pub fn run(&self, prog: &Program) -> Result<SimReport, SimError> {
        Ok(self.run_inner(prog, None)?.0)
    }

    /// Like [`Self::run`], additionally recording a per-op execution
    /// [`Trace`] (start/end times, thread, label).
    pub fn run_traced(&self, prog: &Program) -> Result<(SimReport, Trace), SimError> {
        let (report, trace, _) = self.run_inner(prog, Some(Trace::default()))?;
        Ok((report, trace.expect("trace requested")))
    }

    /// Like [`Self::run`], additionally returning the engine's internal
    /// [`EngineStats`] counters (events processed, rate epochs, stale heap
    /// entries, ...).
    pub fn run_stats(&self, prog: &Program) -> Result<(SimReport, EngineStats), SimError> {
        let (report, _, stats) = self.run_inner(prog, None)?;
        Ok((report, stats))
    }

    /// Validate `prog` against this machine without executing anything.
    ///
    /// [`Self::run`] reports mode mismatches only when the offending op
    /// *starts*, possibly deep into a long simulation; `preflight` checks
    /// the whole program up front:
    ///
    /// * structural validity ([`Program::validate`]);
    /// * every `Copy` endpoint is addressable in the machine's memory mode
    ///   (the same rule `run` enforces per-op);
    /// * the program does not ask for more threads than the machine has.
    pub fn preflight(&self, prog: &Program) -> Result<(), SimError> {
        prog.validate()?;
        if prog.threads() > self.cfg.total_threads() {
            return Err(SimError::InvalidConfig(format!(
                "program uses {} threads but the machine has {}",
                prog.threads(),
                self.cfg.total_threads()
            )));
        }
        if self.cfg.addressable_mcdram() == 0 {
            for op in prog.ops() {
                if let OpKind::Copy { src, dst, .. } = &op.kind {
                    if *src == Place::Mcdram || *dst == Place::Mcdram {
                        return Err(SimError::LevelNotAddressable(MemLevel::Mcdram));
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Self::preflight`] then [`Self::run`]: execution starts only if the
    /// whole program is valid for this machine.
    pub fn run_checked(&self, prog: &Program) -> Result<SimReport, SimError> {
        self.preflight(prog)?;
        self.run(prog)
    }

    /// Statically verify the chunk schedule `spec` would emit, against
    /// this machine, without lowering or executing anything.
    ///
    /// The pipeline-level companion of [`Self::preflight`]: where
    /// `preflight` checks a lowered [`Program`] structurally, this proves
    /// the *schedule* race- and deadlock-free over every linearization
    /// and (for HBW placement) bounds its peak MCDRAM occupancy against
    /// the machine's addressable capacity — the static form of the V009
    /// oversubscription lint. A fatal finding is reported as
    /// [`SimError::InvalidConfig`] carrying the counterexample trace; a
    /// clean verdict returns the proven
    /// [`GraphReport`](mlm_exec::graph::GraphReport) (peak live chunks,
    /// peak HBW bytes).
    pub fn preflight_spec(
        &self,
        spec: &mlm_exec::PipelineSpec,
    ) -> Result<mlm_exec::graph::GraphReport, SimError> {
        let budget =
            (spec.placement == mlm_exec::Placement::Hbw).then(|| self.cfg.addressable_mcdram());
        let report = mlm_exec::graph::verify_spec(spec, budget)
            .map_err(|e| SimError::InvalidConfig(e.to_string()))?;
        if !report.is_safe() {
            return Err(SimError::InvalidConfig(format!(
                "schedule rejected by static verification: {report}"
            )));
        }
        Ok(report)
    }

    fn run_inner(
        &self,
        prog: &Program,
        trace: Option<Trace>,
    ) -> Result<(SimReport, Option<Trace>, EngineStats), SimError> {
        prog.validate()?;
        let engine = Engine::new(self, prog, trace);
        engine.run()
    }

    /// Shared op-completion bookkeeping for the naive reference loop; the
    /// optimized engine uses [`Engine::complete`], which also feeds the
    /// ready worklist.
    #[cfg(feature = "reference-engine")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn complete_op(
        op: usize,
        started_at: f64,
        now: f64,
        done: &mut [bool],
        completed: &mut usize,
        remaining_deps: &mut [usize],
        dependents: &[Vec<usize>],
        dep_ready: &mut [bool],
        report: &mut SimReport,
    ) {
        debug_assert!(!done[op]);
        done[op] = true;
        *completed += 1;
        report.ops_executed += 1;
        report.thread_busy += now - started_at;
        for &d in &dependents[op] {
            remaining_deps[d] -= 1;
            if remaining_deps[d] == 0 {
                dep_ready[d] = true;
            }
        }
    }

    /// Resolve an op's accesses into a flow spec (demand coefficients per
    /// logical byte + rate cap), charging traffic counters and computing the
    /// serial miss-latency penalty.
    pub(crate) fn resolve(
        &self,
        kind: &OpKind,
        mut cache: Option<&mut DirectMappedCache>,
        report: &mut SimReport,
    ) -> Result<(FlowSpec, f64), SimError> {
        let mut ddr_bytes = 0u64;
        let mut mcd_bytes = 0u64;
        let mut misses = 0u64;

        // `Copy` ops place data, so their MCDRAM endpoints must be
        // addressable in the current mode. `Stream` accesses are bus-traffic
        // descriptors (software layers use explicit `Mcdram` accesses to
        // model analytically-derived cache hits), so they are exempt.
        let placement_checked = matches!(kind, OpKind::Copy { .. });
        let mut charge = |access: &Access,
                          cache: &mut Option<&mut DirectMappedCache>,
                          report: &mut SimReport|
         -> Result<(), SimError> {
            match access.place {
                Place::Ddr => {
                    ddr_bytes += access.bytes;
                    bump(&mut report.traffic[DDR], access.bytes, access.write);
                }
                Place::Mcdram => {
                    if placement_checked && self.cfg.addressable_mcdram() == 0 {
                        return Err(SimError::LevelNotAddressable(MemLevel::Mcdram));
                    }
                    mcd_bytes += access.bytes;
                    bump(&mut report.traffic[MCD], access.bytes, access.write);
                }
                Place::CachedDdr { addr } => match cache.as_deref_mut() {
                    Some(c) => {
                        let t = c.access(addr, access.bytes, access.write);
                        misses += t.miss_count;
                        ddr_bytes += t.traffic_on(MemLevel::Ddr);
                        mcd_bytes += t.traffic_on(MemLevel::Mcdram);
                        // DDR: miss fills are reads; writebacks are writes.
                        report.traffic[DDR].read += t.miss_bytes;
                        report.traffic[DDR].written += t.writeback_bytes;
                        // MCDRAM: hits follow the access direction; fills are
                        // writes; writeback sources are reads.
                        bump(&mut report.traffic[MCD], t.hit_bytes, access.write);
                        report.traffic[MCD].written += t.fill_bytes;
                        report.traffic[MCD].read += t.writeback_bytes;
                    }
                    None => {
                        // Flat mode: a "cached DDR" access is a plain DDR
                        // access. This lets one program run in every mode
                        // (the paper's MLM-ddr variant is exactly this).
                        ddr_bytes += access.bytes;
                        bump(&mut report.traffic[DDR], access.bytes, access.write);
                    }
                },
            }
            Ok(())
        };

        let (logical, cap) = match kind {
            OpKind::Copy {
                src,
                dst,
                bytes,
                rate_cap,
            } => {
                charge(&Access::read(*src, *bytes), &mut cache, report)?;
                charge(&Access::write(*dst, *bytes), &mut cache, report)?;
                (*bytes as f64, *rate_cap)
            }
            OpKind::Stream { accesses, rate_cap } => {
                for a in accesses {
                    charge(a, &mut cache, report)?;
                }
                let logical: u64 = accesses.iter().map(|a| a.bytes).sum();
                (logical as f64, *rate_cap)
            }
            OpKind::Delay { .. } => unreachable!("delays never reach resolve()"),
        };

        let mut demand = Vec::with_capacity(2);
        if ddr_bytes > 0 {
            demand.push((DDR, ddr_bytes as f64 / logical));
        }
        if mcd_bytes > 0 {
            demand.push((MCD, mcd_bytes as f64 / logical));
        }
        let penalty = misses as f64 * self.cfg.cache_miss_penalty;
        Ok((FlowSpec { demand, cap }, penalty))
    }
}

/// A shared dependency countdown for all ops whose dep lists are
/// identical — one barrier wave, one counter (see `Engine::new`).
///
/// The first member is inline so the overwhelmingly common singleton
/// group (chains, pipelines: unique dep lists) costs no allocation —
/// `Vec::new()` never touches the heap.
struct JoinGroup {
    /// Uncompleted deps; members wake when this reaches zero.
    remaining: usize,
    /// The first op gated on this dep list.
    first: u32,
    /// Any further ops sharing the identical dep list (barrier waves).
    rest: Vec<u32>,
}

/// Word-bitset worklist of thread indices.
///
/// Barrier-storm programs are ~100% instant ops: every zero-delay
/// completion costs one worklist insert and one pop, and the `BTreeSet`
/// this replaces paid pointer-chasing node traversals for each — the
/// whole of the 0.87× regression at `barrier-storm-64x100`. Here insert
/// is one OR and pop is a `trailing_zeros` scan over a handful of words,
/// while reproducing the exact BTreeSet drain order: first set bit at or
/// after the cursor, wrapping to the global minimum.
struct ThreadSet {
    words: Vec<u64>,
}

impl ThreadSet {
    /// The full set `{0, .., n-1}`.
    fn full(n: usize) -> Self {
        let nw = n.div_ceil(64);
        let mut words = vec![!0u64; nw];
        let used = n - (nw.saturating_sub(1)) * 64;
        if used < 64 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << used) - 1;
            }
        }
        ThreadSet { words }
    }

    #[inline]
    fn insert(&mut self, t: usize) {
        self.words[t >> 6] |= 1u64 << (t & 63);
    }

    /// Remove and return the first element `>= cur`, wrapping to the
    /// smallest element if none — the ascending-with-wraparound order the
    /// reference loop's fixed-point rescan realizes.
    #[inline]
    fn pop_wrapping(&mut self, cur: usize) -> Option<usize> {
        let nw = self.words.len();
        let w0 = cur >> 6;
        if w0 < nw {
            let masked = self.words[w0] & (!0u64 << (cur & 63));
            if masked != 0 {
                return Some(self.take(w0, masked));
            }
            for w in w0 + 1..nw {
                if self.words[w] != 0 {
                    let m = self.words[w];
                    return Some(self.take(w, m));
                }
            }
        }
        for w in 0..nw.min(w0 + 1) {
            if self.words[w] != 0 {
                let m = self.words[w];
                return Some(self.take(w, m));
            }
        }
        None
    }

    /// Clear and return the lowest bit of `mask` within word `w`.
    #[inline]
    fn take(&mut self, w: usize, mask: u64) -> usize {
        let b = mask.trailing_zeros() as usize;
        self.words[w] &= !(1u64 << b);
        (w << 6) | b
    }
}

/// One in-flight simulation: all engine state for a single `run`.
struct Engine<'p> {
    sim: &'p Simulator,
    prog: &'p Program,
    capacities: [f64; 2],
    cache: Option<DirectMappedCache>,

    // Program scheduling state.
    queues: Vec<VecDeque<usize>>,
    /// Per op, the join groups it feeds (one entry per dep-list occurrence).
    dependents: Vec<Vec<u32>>,
    /// Shared countdowns, one per distinct dep list (see `Engine::new`).
    groups: Vec<JoinGroup>,
    /// Dense op → thread map; `Op` structs carry their dep vectors, so
    /// waking dependents through them costs a cache miss per edge.
    thread_of: Vec<u32>,
    done: Vec<bool>,
    dep_ready: Vec<bool>,
    busy: Vec<bool>,
    completed: usize,
    /// Threads whose front op may have become startable.
    runnable: ThreadSet,

    // Event core.
    now: f64,
    flows: Slab<FlowSlot>,
    /// Dense list of live flow keys, for O(active) epoch application.
    active: Vec<Key>,
    /// Expiry events in flight (delays are never cancelled, so a counter
    /// suffices to distinguish "idle" from "waiting on a delay").
    pending_delays: usize,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Set when the active flow set changed since the last re-arbitration.
    rates_dirty: bool,
    arbiter: Arbiter,
    rates_scratch: Vec<f64>,

    report: SimReport,
    trace: Option<Trace>,
    stats: EngineStats,
}

impl<'p> Engine<'p> {
    fn new(sim: &'p Simulator, prog: &'p Program, mut trace: Option<Trace>) -> Self {
        let n_ops = prog.ops().len();
        if let Some(tr) = trace.as_mut() {
            tr.threads = prog.threads();
            tr.reserve_for(n_ops);
        }
        let cache = if sim.cfg.mode.has_cache() {
            Some(DirectMappedCache::new(
                sim.cfg.effective_cache_capacity(),
                sim.cfg.cache_segment,
            ))
        } else {
            None
        };
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); prog.threads()];
        // Join-group dependency tracking: ops sharing an identical dep
        // list (every member of a barrier wave) share ONE countdown, so a
        // B-wide barrier costs B decrements + B wakes instead of B×B edge
        // updates. The group counter reaches zero at exactly the event the
        // last per-op counter would have, so wake times — and therefore
        // drain order — are bit-identical to per-op accounting.
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_ops];
        let mut groups: Vec<JoinGroup> = Vec::new();
        let mut dep_ready: Vec<bool> = vec![false; n_ops];
        {
            let mut by_deps: HashMap<&[crate::ops::OpId], u32> = HashMap::new();
            for (i, op) in prog.ops().iter().enumerate() {
                queues[op.thread.0].push_back(i);
                match op.deps.as_slice() {
                    [] => dep_ready[i] = true,
                    // Single-dep ops (chains, pipelines) get their own
                    // group without paying for hashing; sharing would only
                    // save a counter, and the lookup costs more than it.
                    [d] => {
                        let id = groups.len() as u32;
                        groups.push(JoinGroup {
                            remaining: 1,
                            first: i as u32,
                            rest: Vec::new(),
                        });
                        dependents[d.0].push(id);
                    }
                    deps => {
                        let mut created = false;
                        let g = *by_deps.entry(deps).or_insert_with(|| {
                            created = true;
                            let id = groups.len() as u32;
                            groups.push(JoinGroup {
                                remaining: deps.len(),
                                first: i as u32,
                                rest: Vec::new(),
                            });
                            for d in deps {
                                dependents[d.0].push(id);
                            }
                            id
                        });
                        if !created {
                            groups[g as usize].rest.push(i as u32);
                        }
                    }
                }
            }
        }
        Engine {
            sim,
            prog,
            capacities: [sim.cfg.ddr_bandwidth, sim.cfg.effective_mcdram_bandwidth()],
            cache,
            queues,
            dependents,
            groups,
            thread_of: prog.ops().iter().map(|op| op.thread.0 as u32).collect(),
            done: vec![false; n_ops],
            dep_ready,
            busy: vec![false; prog.threads()],
            completed: 0,
            runnable: ThreadSet::full(prog.threads()),
            now: 0.0,
            flows: Slab::with_capacity(prog.threads().min(1024)),
            active: Vec::with_capacity(prog.threads().min(1024)),
            pending_delays: 0,
            heap: BinaryHeap::with_capacity(prog.threads().min(1024) + 16),
            seq: 0,
            rates_dirty: false,
            arbiter: Arbiter::new(),
            rates_scratch: Vec::new(),
            report: SimReport::default(),
            trace,
            stats: EngineStats::default(),
        }
    }

    fn run(mut self) -> Result<(SimReport, Option<Trace>, EngineStats), SimError> {
        let n_ops = self.prog.ops().len();
        loop {
            self.drain_ready()?;
            if self.completed == n_ops {
                break;
            }
            if self.active.is_empty() && self.pending_delays == 0 {
                return Err(SimError::Deadlock(stuck_ops(self.prog, &self.done)));
            }
            self.recompute_if_dirty();

            // Pop the next valid event, skipping lazily-invalidated drains.
            let ev = loop {
                let Reverse(ev) = self
                    .heap
                    .pop()
                    .expect("active flows and pending delays always have events");
                if self.is_valid(&ev) {
                    break ev;
                }
                self.stats.stale_events += 1;
            };

            if ev.time > self.now {
                self.record_span(ev.time);
                self.now = ev.time;
            }
            self.stats.events += 1;
            self.process(ev);

            // Coalesce every event at (numerically) the same timestamp so
            // same-time completions trigger a single rate epoch. The
            // tolerance matches the reference loop's delay-expiry rule.
            let horizon = self.now * (1.0 + 1e-12) + 1e-15;
            while let Some(&Reverse(top)) = self.heap.peek() {
                if top.time > horizon {
                    break;
                }
                let Reverse(ev) = self.heap.pop().expect("peeked");
                if self.is_valid(&ev) {
                    self.stats.events += 1;
                    self.process(ev);
                } else {
                    self.stats.stale_events += 1;
                }
            }
        }

        let mut report = self.report;
        report.makespan = self.now;
        if self.now > 0.0 {
            report.utilization[DDR] = report.served_bytes[DDR] / (self.capacities[DDR] * self.now);
            report.utilization[MCD] = report.served_bytes[MCD] / (self.capacities[MCD] * self.now);
        }
        if let Some(c) = &self.cache {
            report.cache = c.stats();
        }
        let mut trace = self.trace;
        if let Some(tr) = trace.as_mut() {
            tr.makespan = report.makespan;
        }
        Ok((report, trace, self.stats))
    }

    /// Start every startable op at the current time.
    ///
    /// Equivalent to the reference loop's fixed-point rescan, but driven by
    /// the `runnable` worklist: threads are visited in ascending order with
    /// a wrap-around cursor, so a thread unblocked by a *later* thread's
    /// instant op is processed on the next "pass" — exactly the reference
    /// ordering, which matters for cache-mode access order.
    fn drain_ready(&mut self) -> Result<(), SimError> {
        let prog = self.prog;
        let sim = self.sim;
        let mut cur = 0usize;
        while let Some(t) = self.runnable.pop_wrapping(cur) {
            cur = t + 1;
            while !self.busy[t] {
                let Some(&front) = self.queues[t].front() else {
                    break;
                };
                if !self.dep_ready[front] {
                    break;
                }
                self.queues[t].pop_front();
                let op = &prog.ops()[front];
                match &op.kind {
                    OpKind::Delay { seconds } if *seconds <= 0.0 => {
                        // Instant completion; keep popping this thread. Any
                        // dependents it unblocks join the worklist.
                        self.stats.instant_ops += 1;
                        self.complete(front, self.now);
                    }
                    OpKind::Delay { seconds } => {
                        let deadline = self.now + seconds;
                        self.push_event(
                            deadline,
                            EventKind::Expiry {
                                op: front,
                                started_at: self.now,
                            },
                        );
                        self.pending_delays += 1;
                        self.busy[t] = true;
                    }
                    kind => {
                        let (spec, penalty) =
                            sim.resolve(kind, self.cache.as_mut(), &mut self.report)?;
                        let slot = FlowSlot {
                            op: front,
                            remaining: spec_len(kind),
                            rate: 0.0,
                            last_sync: self.now,
                            pred: 0,
                            active_pos: self.active.len(),
                            penalty_after: penalty,
                            started_at: self.now,
                            spec,
                        };
                        let key = self.flows.insert(slot);
                        self.active.push(key);
                        self.rates_dirty = true;
                        self.busy[t] = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-run bandwidth arbitration if the active flow set changed.
    ///
    /// Fast path: when the summed cap-weighted demand fits every resource,
    /// water-filling provably assigns each flow exactly its cap, so only
    /// flows *not already at cap* are touched (no heap churn for the rest).
    /// Slow path: full water-filling via the reusable [`Arbiter`], borrowing
    /// specs from the slab — no `FlowSpec` clones.
    fn recompute_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        if self.active.is_empty() {
            return;
        }
        self.stats.rate_recomputes += 1;

        let mut cap_demand = [0.0f64; 2];
        for &key in &self.active {
            let f = self.flows.get(key).expect("active keys are live");
            for &(res, coeff) in &f.spec.demand {
                cap_demand[res] += f.spec.cap * coeff;
            }
        }

        if cap_demand[DDR] <= self.capacities[DDR] && cap_demand[MCD] <= self.capacities[MCD] {
            for i in 0..self.active.len() {
                let key = self.active[i];
                let cap = self.flows.get(key).expect("live").spec.cap;
                if self.flows.get(key).expect("live").rate != cap {
                    self.retime(key, cap);
                }
            }
        } else {
            self.stats.full_recomputes += 1;
            let flows = &self.flows;
            self.arbiter.allocate(
                &self.capacities,
                self.active
                    .iter()
                    .map(|&k| &flows.get(k).expect("live").spec),
                &mut self.rates_scratch,
            );
            for i in 0..self.active.len() {
                let key = self.active[i];
                let r = self.rates_scratch[i];
                if self.flows.get(key).expect("live").rate != r {
                    self.retime(key, r);
                }
            }
        }
    }

    /// Give a flow a new rate: integrate progress under the old rate, then
    /// invalidate its outstanding drain prediction and push a new one.
    fn retime(&mut self, key: Key, rate: f64) {
        debug_assert!(rate > 0.0, "validated ops always get positive rates");
        self.materialize(key);
        let f = self.flows.get_mut(key).expect("live");
        f.rate = rate;
        f.pred = f.pred.wrapping_add(1);
        let pred = f.pred;
        let dt = (f.remaining / rate).max(0.0);
        let time = self.now + dt;
        self.push_event(time, EventKind::Drain { key, pred });
    }

    /// Charge a flow's progress (and served-byte counters) for the span
    /// since its last sync. Rates are piecewise-constant, so this is exact.
    fn materialize(&mut self, key: Key) {
        let f = self.flows.get_mut(key).expect("live");
        let dt = self.now - f.last_sync;
        if dt > 0.0 && f.rate > 0.0 {
            f.remaining -= f.rate * dt;
            for &(res, coeff) in &f.spec.demand {
                self.report.served_bytes[res] += f.rate * coeff * dt;
            }
        }
        f.last_sync = self.now;
    }

    fn is_valid(&self, ev: &Event) -> bool {
        match ev.kind {
            EventKind::Expiry { .. } => true,
            EventKind::Drain { key, pred } => self.flows.get(key).is_some_and(|f| f.pred == pred),
        }
    }

    fn process(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Expiry { op, started_at } => {
                self.pending_delays -= 1;
                let t = self.prog.ops()[op].thread.0;
                self.busy[t] = false;
                self.runnable.insert(t);
                self.complete(op, started_at);
            }
            EventKind::Drain { key, .. } => {
                self.materialize(key);
                let f = self.flows.get(key).expect("valid drain implies live");
                if f.remaining > EPS_BYTES {
                    // The event was coalesced slightly ahead of this flow's
                    // true drain; reschedule at the residual (matches the
                    // reference loop, which only completes flows within
                    // EPS_BYTES of done).
                    let dt = f.remaining / f.rate;
                    let f = self.flows.get_mut(key).expect("live");
                    f.pred = f.pred.wrapping_add(1);
                    let pred = f.pred;
                    let time = self.now + dt;
                    self.push_event(time, EventKind::Drain { key, pred });
                    return;
                }
                let f = self.flows.remove(key).expect("live");
                let pos = f.active_pos;
                self.active.swap_remove(pos);
                if let Some(&moved) = self.active.get(pos) {
                    self.flows.get_mut(moved).expect("live").active_pos = pos;
                }
                self.rates_dirty = true;
                if f.penalty_after > 0.0 {
                    // Thread stays busy through the serial penalty tail.
                    self.push_event(
                        self.now + f.penalty_after,
                        EventKind::Expiry {
                            op: f.op,
                            started_at: f.started_at,
                        },
                    );
                    self.pending_delays += 1;
                } else {
                    let t = self.prog.ops()[f.op].thread.0;
                    self.busy[t] = false;
                    self.runnable.insert(t);
                    self.complete(f.op, f.started_at);
                }
            }
        }
    }

    /// Mark an op done: bump counters, record the trace, release dependents
    /// and enqueue their threads on the ready worklist.
    fn complete(&mut self, op: usize, started_at: f64) {
        debug_assert!(!self.done[op]);
        self.done[op] = true;
        self.completed += 1;
        self.report.ops_executed += 1;
        self.report.thread_busy += self.now - started_at;
        record(&mut self.trace, self.prog, op, started_at, self.now);
        // Barrier-heavy programs have far more edges than ops, so this loop
        // dominates. Take the list out to iterate borrow-free (an op
        // completes exactly once); one decrement per join group, and when
        // a group drains every member of the wave wakes at once.
        let dependents = std::mem::take(&mut self.dependents[op]);
        for &g in &dependents {
            let grp = &mut self.groups[g as usize];
            grp.remaining -= 1;
            if grp.remaining == 0 {
                let first = grp.first as usize;
                // A group drains exactly once; take the wave out to walk
                // it without re-borrowing.
                let rest = std::mem::take(&mut grp.rest);
                self.dep_ready[first] = true;
                self.runnable.insert(self.thread_of[first] as usize);
                for &m in &rest {
                    self.dep_ready[m as usize] = true;
                    self.runnable.insert(self.thread_of[m as usize] as usize);
                }
                self.groups[g as usize].rest = rest;
            }
        }
        self.dependents[op] = dependents;
    }

    /// Record the bus-utilization segment for the span `[now, end)` under
    /// the current (piecewise-constant) rates. Only runs when tracing.
    fn record_span(&mut self, end: f64) {
        if self.trace.is_none() {
            return;
        }
        let mut used = [0.0f64; 2];
        for &key in &self.active {
            let f = self.flows.get(key).expect("live");
            for &(res, coeff) in &f.spec.demand {
                used[res] += f.rate * coeff;
            }
        }
        let seg = BusSegment {
            start: self.now,
            end,
            ddr: (used[DDR] / self.capacities[DDR]).min(1.0),
            mcdram: (used[MCD] / self.capacities[MCD]).min(1.0),
        };
        self.trace.as_mut().expect("checked above").record_bus(seg);
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
        if self.heap.len() > self.stats.heap_peak {
            self.stats.heap_peak = self.heap.len();
        }
    }
}

/// Diagnostics for a deadlock: the first few unfinished ops with their
/// thread and unmet dependencies.
pub(crate) fn stuck_ops(prog: &Program, done: &[bool]) -> Vec<StuckOp> {
    prog.ops()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !done[i])
        .take(8)
        .map(|(i, op)| StuckOp {
            op: i,
            thread: op.thread.0,
            label: op.label.clone(),
            unmet_deps: op.deps.iter().map(|d| d.0).filter(|&d| !done[d]).collect(),
        })
        .collect()
}

/// Append a trace record if tracing is enabled.
pub(crate) fn record(trace: &mut Option<Trace>, prog: &Program, op: usize, start: f64, end: f64) {
    if let Some(tr) = trace.as_mut() {
        tr.ops.push(OpRecord {
            op,
            thread: prog.ops()[op].thread.0,
            start,
            end,
            label: prog.ops()[op].label.clone(),
        });
    }
}

#[inline]
pub(crate) fn bump(t: &mut LevelTraffic, bytes: u64, write: bool) {
    if write {
        t.written += bytes;
    } else {
        t.read += bytes;
    }
}

/// Flow length in logical bytes for the rate cap to act on.
pub(crate) fn spec_len(kind: &OpKind) -> f64 {
    match kind {
        OpKind::Copy { bytes, .. } => *bytes as f64,
        OpKind::Stream { accesses, .. } => accesses.iter().map(|a| a.bytes).sum::<u64>() as f64,
        OpKind::Delay { .. } => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MemMode;
    use crate::GB;

    fn flat() -> MachineConfig {
        MachineConfig::tiny(MemMode::Flat) // DDR 10 GB/s, MCDRAM 40 GB/s, copy 1 GB/s, comp 2 GB/s
    }

    #[test]
    fn single_copy_capped_by_thread_rate() {
        let cfg = flat();
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(
                Place::Ddr,
                Place::Mcdram,
                2_000_000_000,
                cfg.per_thread_copy_bw,
            ),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9, "2 GB at 1 GB/s");
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, 2_000_000_000);
        assert_eq!(r.traffic_on(MemLevel::Mcdram).written, 2_000_000_000);
    }

    #[test]
    fn many_copy_threads_saturate_ddr() {
        let cfg = flat();
        let n = 32; // 32 threads * 1 GB/s = 32 GB/s demand > 10 GB/s DDR
        let mut p = Program::new(n);
        for t in 0..n {
            p.push(
                t,
                OpKind::copy(
                    Place::Ddr,
                    Place::Mcdram,
                    1_000_000_000,
                    cfg.per_thread_copy_bw,
                ),
                &[],
            );
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // 32 GB moved at DDR-bound 10 GB/s.
        assert!((r.makespan - 3.2).abs() < 1e-6, "makespan={}", r.makespan);
        assert!(r.utilization[DDR] > 0.999);
    }

    #[test]
    fn sequential_ops_on_one_thread_serialize() {
        let cfg = flat();
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            0,
            OpKind::copy(Place::Mcdram, Place::Ddr, 1_000_000_000, 1.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn independent_threads_overlap() {
        let cfg = flat();
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::inplace_pass(Place::Mcdram, 1_000_000_000, 2.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Copy takes 1 s; compute takes 2 GB of traffic at 2 GB/s = 1 s;
        // neither saturates anything; fully overlapped.
        assert!((r.makespan - 1.0).abs() < 1e-9, "makespan={}", r.makespan);
        assert!((r.thread_busy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize_across_threads() {
        let cfg = flat();
        let mut p = Program::new(2);
        let a = p.push(0, OpKind::Delay { seconds: 1.0 }, &[]);
        p.push(1, OpKind::Delay { seconds: 1.0 }, &[a]);
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_joins_phases() {
        let cfg = flat();
        let mut p = Program::new(3);
        let mut phase1 = Vec::new();
        for t in 0..3 {
            phase1.push(p.push(
                t,
                OpKind::Delay {
                    seconds: (t + 1) as f64 * 0.5,
                },
                &[],
            ));
        }
        let bar = p.barrier(0..3, &phase1);
        for t in 0..3 {
            p.push(t, OpKind::Delay { seconds: 0.5 }, &bar);
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Slowest phase-1 op is 1.5 s; then 0.5 s.
        assert!((r.makespan - 2.0).abs() < 1e-12, "makespan={}", r.makespan);
    }

    #[test]
    fn zero_delay_barriers_cost_nothing() {
        let cfg = flat();
        let mut p = Program::new(4);
        let mut deps = Vec::new();
        for _ in 0..10 {
            deps = p.barrier(0..4, &deps);
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.ops_executed, 40);
    }

    #[test]
    fn mcdram_not_addressable_in_cache_mode() {
        let cfg = MachineConfig::tiny(MemMode::Cache);
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1000, 1.0 * GB),
            &[],
        );
        let err = Simulator::new(cfg).run(&p).unwrap_err();
        assert_eq!(err, SimError::LevelNotAddressable(MemLevel::Mcdram));
    }

    #[test]
    fn cached_access_warms_up() {
        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_mode_efficiency = 1.0;
        let bytes = 32 << 20; // half the 64 MiB cache
        let mut p = Program::new(1);
        let a = p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[a],
        );
        let r = Simulator::new(cfg.clone()).run(&p).unwrap();
        // First pass: DDR-bound at 10 GB/s (plus concurrent fill on MCDRAM).
        // Second pass: all hits, MCDRAM at 40 GB/s.
        let b = bytes as f64;
        let expect = b / (10.0 * GB) + b / (40.0 * GB);
        assert!(
            (r.makespan - expect).abs() / expect < 1e-6,
            "makespan={}",
            r.makespan
        );
        assert_eq!(r.cache.miss_bytes, bytes);
        assert_eq!(r.cache.hit_bytes, bytes);
        // DDR traffic: only the cold pass.
        assert_eq!(r.traffic_on(MemLevel::Ddr).read, bytes);
    }

    #[test]
    fn cached_place_degrades_to_ddr_in_flat_mode() {
        let cfg = flat();
        let bytes = 1_000_000_000u64;
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!((r.makespan - 0.1).abs() < 1e-9, "1 GB read at 10 GB/s DDR");
        assert_eq!(r.cache.accessed_bytes, 0);
    }

    #[test]
    fn miss_penalty_adds_serial_latency() {
        let mut cfg = MachineConfig::tiny(MemMode::Cache);
        cfg.cache_mode_efficiency = 1.0;
        cfg.cache_miss_penalty = 1e-3; // 1 ms per 1 MiB segment miss
        let bytes: u64 = 8 << 20; // 8 segments
        let mut p = Program::new(1);
        p.push(
            0,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 0 }, bytes)],
                rate_cap: 100.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        let transfer = bytes as f64 / (10.0 * GB);
        let expect = transfer + 8.0 * 1e-3;
        assert!(
            (r.makespan - expect).abs() < 1e-9,
            "makespan={}",
            r.makespan
        );
    }

    #[test]
    fn compute_threads_share_mcdram_with_copy_threads() {
        // The Eq. 5 scenario as an end-to-end engine test.
        let cfg = MachineConfig::knl_7250(MemMode::Flat);
        let p_copy = 16usize;
        let p_comp = 64usize;
        let copy_bytes = 1_000_000_000u64;
        let comp_traffic = 2_000_000_000u64;
        let mut p = Program::new(p_copy + p_comp);
        for t in 0..p_copy {
            p.push(
                t,
                OpKind::copy(
                    Place::Ddr,
                    Place::Mcdram,
                    copy_bytes,
                    cfg.per_thread_copy_bw,
                ),
                &[],
            );
        }
        for t in 0..p_comp {
            p.push(
                p_copy + t,
                OpKind::inplace_pass(Place::Mcdram, comp_traffic / 2, cfg.per_thread_compute_bw),
                &[],
            );
        }
        let r = Simulator::new(cfg).run(&p).unwrap();
        // Copies: 16 * 4.8 = 76.8 GB/s (< 90), each finishes 1 GB in 0.2083 s.
        // Compute: shares 400 - 76.8 = 323.2 GB/s among 64 threads = 5.05
        // GB/s each (< 6.78 cap) while copies run.
        let copy_t = copy_bytes as f64 / 4.8e9;
        assert!(r.makespan > copy_t, "compute outlasts copies");
        // After copies end, compute threads run at their 6.78 cap (64*6.78=434>400 → 6.25).
        let comp_during = (400e9 - 76.8e9) / 64.0;
        let progressed = comp_during * copy_t;
        let left = comp_traffic as f64 - progressed;
        let after_rate = 400e9 / 64.0; // capped by MCDRAM sharing
        let expect = copy_t + left / after_rate;
        assert!(
            (r.makespan - expect).abs() / expect < 1e-6,
            "makespan={} expect={expect}",
            r.makespan
        );
    }

    #[test]
    fn served_bytes_match_traffic_counters() {
        let cfg = flat();
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 500_000_000, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::inplace_pass(Place::Ddr, 250_000_000, 2.0 * GB),
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        let ddr_total = r.traffic_on(MemLevel::Ddr).total() as f64;
        let mcd_total = r.traffic_on(MemLevel::Mcdram).total() as f64;
        assert!((r.served_bytes[DDR] - ddr_total).abs() < 1.0);
        assert!((r.served_bytes[MCD] - mcd_total).abs() < 1.0);
    }

    #[test]
    fn empty_program_runs_instantly() {
        let r = Simulator::new(flat()).run(&Program::new(4)).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.ops_executed, 0);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = Program::new(1);
        p.push(5, OpKind::Delay { seconds: 0.0 }, &[]);
        assert!(Simulator::new(flat()).run(&p).is_err());
    }

    #[test]
    fn hybrid_mode_allows_both_flat_mcdram_and_cached_ddr() {
        let mut cfg = MachineConfig::tiny(MemMode::Hybrid {
            cache_fraction: 0.5,
        });
        cfg.cache_mode_efficiency = 1.0;
        let mut p = Program::new(2);
        p.push(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1 << 20, 1.0 * GB),
            &[],
        );
        p.push(
            1,
            OpKind::Stream {
                accesses: vec![Access::read(Place::CachedDdr { addr: 1 << 24 }, 1 << 20)],
                rate_cap: 1.0 * GB,
            },
            &[],
        );
        let r = Simulator::new(cfg).run(&p).unwrap();
        assert!(r.makespan > 0.0);
        assert!(r.cache.accessed_bytes > 0);
        assert!(r.traffic_on(MemLevel::Mcdram).total() > 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_intervals() {
        let cfg = flat();
        let mut p = Program::new(2);
        let a = p.push_labeled(
            0,
            OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
            &[],
            Some("copy-in".into()),
        );
        p.push(1, OpKind::Delay { seconds: 0.25 }, &[a]);
        let sim = Simulator::new(cfg);
        let plain = sim.run(&p).unwrap();
        let (traced, trace) = sim.run_traced(&p).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb results");
        assert_eq!(trace.ops.len(), 2);
        assert_eq!(trace.threads, 2);
        assert!((trace.makespan - 1.25).abs() < 1e-9);
        let copy = trace.ops.iter().find(|r| r.op == 0).unwrap();
        assert_eq!(copy.label.as_deref(), Some("copy-in"));
        assert!((copy.start - 0.0).abs() < 1e-12);
        assert!((copy.end - 1.0).abs() < 1e-9);
        let delay = trace.ops.iter().find(|r| r.op == 1).unwrap();
        assert!((delay.start - 1.0).abs() < 1e-9);
        assert!((delay.end - 1.25).abs() < 1e-9);
        // Derived views.
        assert!((trace.thread_busy_fraction(0) - 0.8).abs() < 1e-9);
        assert_eq!(trace.concurrency_at(0.5), 1);
        let g = trace.gantt(0..2, 10);
        assert_eq!(g.lines().count(), 2);
        // Exact bus timeline: the copy runs at 1 GB/s on a 10 GB/s DDR bus
        // for the first second, then the bus idles during the delay.
        assert!(!trace.bus.is_empty());
        assert!((trace.bus_utilization(0.0, 1.0, true) - 0.1).abs() < 1e-9);
        assert!(trace.bus_utilization(1.0, 1.25, true) < 1e-12);
        let spark = trace.bus_sparkline(true, 10);
        assert_eq!(spark.chars().count(), 10);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let cfg = MachineConfig::knl_7250(MemMode::Cache);
        let mut p = Program::new(8);
        for t in 0..8 {
            p.push(
                t,
                OpKind::Stream {
                    accesses: vec![Access::read(
                        Place::CachedDdr {
                            addr: (t as u64) << 30,
                        },
                        1 << 28,
                    )],
                    rate_cap: 6.78 * GB,
                },
                &[],
            );
        }
        let sim = Simulator::new(cfg);
        let a = sim.run(&p).unwrap();
        let b = sim.run(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stuck_ops_name_thread_and_unmet_deps() {
        // Validated programs cannot actually deadlock (deps are backward
        // references, so the smallest unfinished op id is always startable);
        // the Deadlock path is defensive. Exercise the diagnostic builder
        // directly on a partially-done program.
        let mut p = Program::new(2);
        let gate = p.push(0, OpKind::Delay { seconds: 1.0 }, &[]);
        let first = p.push_labeled(
            1,
            OpKind::Delay { seconds: 1.0 },
            &[gate],
            Some("front".into()),
        );
        let _second = p.push(1, OpKind::Delay { seconds: 1.0 }, &[first]);
        let mut done = vec![false; p.ops().len()];
        done[0] = true; // the gate completed; the rest is "stuck"
        let stuck = stuck_ops(&p, &done);
        assert_eq!(stuck.len(), 2);
        assert_eq!(stuck[0].op, 1);
        assert_eq!(stuck[0].thread, 1);
        assert_eq!(stuck[0].label.as_deref(), Some("front"));
        assert!(
            stuck[0].unmet_deps.is_empty(),
            "its only dep (gate) is done"
        );
        assert_eq!(stuck[1].unmet_deps, vec![1]);
        let msg = SimError::Deadlock(stuck).to_string();
        assert!(msg.contains("op 1") && msg.contains("thread 1"), "{msg}");
        assert!(msg.contains("waiting on [1]"), "{msg}");
    }

    #[test]
    fn same_timestamp_cascade_triggers_one_rate_epoch() {
        // A delay expiry releases a zero-delay barrier cascade that starts
        // four copies at the same instant: the engine must coalesce all of
        // it into exactly one re-arbitration (the rate-epoch invariant).
        let cfg = flat();
        let mut p = Program::new(4);
        let gate = p.push(0, OpKind::Delay { seconds: 1.0 }, &[]);
        let bar = p.barrier(0..4, &[gate]);
        for t in 0..4 {
            p.push(
                t,
                OpKind::copy(Place::Ddr, Place::Mcdram, 1_000_000_000, 1.0 * GB),
                &bar,
            );
        }
        let (r, stats) = Simulator::new(cfg).run_stats(&p).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9, "makespan={}", r.makespan);
        assert_eq!(
            stats.rate_recomputes, 1,
            "one epoch for the whole cascade: {stats:?}"
        );
        // 4 GB/s total demand < 10 GB/s DDR: the everyone-at-cap fast path.
        assert_eq!(stats.full_recomputes, 0);
        assert!(stats.instant_ops >= 4, "barrier ops complete inline");
    }

    #[test]
    fn run_stats_matches_run() {
        let cfg = flat();
        let mut p = Program::new(8);
        let mut prev = Vec::new();
        for round in 0..5 {
            let mut ids = Vec::new();
            for t in 0..8 {
                ids.push(p.push(
                    t,
                    OpKind::copy(
                        Place::Ddr,
                        Place::Mcdram,
                        100_000_000 * (1 + (t as u64 + round) % 3),
                        1.0 * GB,
                    ),
                    &prev,
                ));
            }
            prev = p.barrier(0..8, &ids);
        }
        let sim = Simulator::new(cfg);
        let plain = sim.run(&p).unwrap();
        let (stats_report, stats) = sim.run_stats(&p).unwrap();
        assert_eq!(plain, stats_report);
        assert!(stats.events > 0);
        assert!(stats.rate_recomputes >= 5, "at least one epoch per round");
        assert!(stats.heap_peak >= 8);
    }

    #[test]
    fn staggered_completions_invalidate_predictions_lazily() {
        // 8 copies of different sizes on a saturated bus: every completion
        // changes the survivors' rates, so their old drain predictions go
        // stale in the heap rather than being rescheduled eagerly.
        let cfg = flat();
        let mut p = Program::new(8);
        for t in 0..8 {
            p.push(
                t,
                OpKind::copy(
                    Place::Ddr,
                    Place::Mcdram,
                    500_000_000 * (t as u64 + 1),
                    4.0 * GB, // 8*4 = 32 GB/s demand > 10 GB/s: saturated
                ),
                &[],
            );
        }
        let (_, stats) = Simulator::new(cfg).run_stats(&p).unwrap();
        assert!(
            stats.stale_events > 0,
            "rate changes must strand old predictions"
        );
        assert!(
            stats.full_recomputes >= 1,
            "saturated bus needs water-filling"
        );
    }
    #[test]
    fn preflight_spec_proves_schedules_and_enforces_mcdram() {
        let sim = Simulator::new(flat());
        let spec = |chunk_bytes: u64| mlm_exec::PipelineSpec {
            total_bytes: chunk_bytes * 5,
            chunk_bytes,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement: mlm_exec::Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: mlm_exec::Workload::Map,
        };
        // Small chunks: proven safe, peak = full 3-slot ring.
        let report = sim.preflight_spec(&spec(64)).unwrap();
        assert_eq!(report.peak_live_chunks, 3);
        assert_eq!(report.peak_hbw_bytes, 192);
        // 32 MiB chunks: peak 96 MiB > tiny's 64 MiB MCDRAM -> G003.
        let err = sim.preflight_spec(&spec(32 << 20)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("G003"), "{msg}");
        // An undriveable spec surfaces as InvalidConfig, not a panic.
        let mut bad = spec(64);
        bad.p_comp = 0;
        assert!(sim.preflight_spec(&bad).is_err());
    }
}
