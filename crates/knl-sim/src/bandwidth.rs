//! Max–min-fair bandwidth arbitration ("water-filling") with per-flow caps.
//!
//! Every active op in the simulator is a *flow* progressing at some rate of
//! "logical bytes" per second. A flow consumes capacity on one or more
//! *resources* (the DDR bus, the MCDRAM bus) in fixed proportion to its
//! logical rate: a DDR→MCDRAM copy consumes 1 byte of DDR bandwidth and
//! 1 byte of MCDRAM bandwidth per logical byte moved; a cache-mode streaming
//! read with hit fraction `h` consumes `1-h` DDR bytes and `1` MCDRAM byte
//! per logical byte, and so on. Each flow also has an intrinsic rate cap
//! (the paper's per-thread rates `S_copy`, `S_comp`).
//!
//! [`allocate_rates`] computes the max–min-fair allocation by progressive
//! filling: the rate of every unfrozen flow is raised uniformly until either
//! a flow hits its cap (that flow freezes) or a resource saturates (every
//! flow using that resource freezes). This generalizes the closed-form
//! saturation conditionals of the paper's Equations 3 and 5 to arbitrary
//! mixes of flows.

/// Index of a resource in the capacity vector passed to [`allocate_rates`].
pub type ResourceId = usize;

/// A flow's demand profile: per logical byte, how many bytes of each
/// resource it consumes, plus its intrinsic rate cap.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// `(resource, coefficient)` pairs; coefficients must be positive and a
    /// resource may appear at most once.
    pub demand: Vec<(ResourceId, f64)>,
    /// Maximum logical rate of this flow in bytes/s (`f64::INFINITY` for
    /// uncapped flows).
    pub cap: f64,
}

impl FlowSpec {
    /// Flow consuming `coeff` bytes of a single resource per logical byte.
    pub fn single(resource: ResourceId, coeff: f64, cap: f64) -> Self {
        FlowSpec {
            demand: vec![(resource, coeff)],
            cap,
        }
    }
}

/// Compute the max–min-fair logical rates for `flows` over resources with
/// the given `capacities` (bytes/s).
///
/// Returns one rate per flow. Rates satisfy:
/// - `0 <= rate[i] <= flows[i].cap`
/// - for every resource `r`: `sum_i rate[i] * coeff[i][r] <= capacities[r]`
///   (within floating-point tolerance)
/// - max–min fairness: no flow's rate can be increased without decreasing
///   the rate of a flow that is at most as fast.
///
/// Flows with an empty demand vector are limited only by their cap. A flow
/// with cap `0` gets rate `0` (it will never complete; callers avoid this).
///
/// This is a convenience wrapper over [`Arbiter`], which hot loops (the
/// engine's rate epochs) use directly to avoid re-allocating scratch state
/// on every invocation.
///
/// # Panics
/// Panics if a flow references a resource index out of range or has a
/// non-positive demand coefficient, or if a capacity is non-positive —
/// these are programming errors in the engine, not user errors.
pub fn allocate_rates(capacities: &[f64], flows: &[FlowSpec]) -> Vec<f64> {
    for (r, &c) in capacities.iter().enumerate() {
        assert!(
            c > 0.0 && c.is_finite(),
            "resource {r} has non-positive capacity {c}"
        );
    }
    for (i, f) in flows.iter().enumerate() {
        assert!(f.cap >= 0.0, "flow {i} has negative cap");
        for &(r, coeff) in &f.demand {
            assert!(
                r < capacities.len(),
                "flow {i} references unknown resource {r}"
            );
            assert!(
                coeff > 0.0 && coeff.is_finite(),
                "flow {i} has bad coefficient {coeff}"
            );
        }
    }

    let mut out = Vec::new();
    Arbiter::new().allocate(capacities, flows.iter(), &mut out);
    out
}

/// Reusable max–min-fair ("water-filling") rate allocator.
///
/// Functionally identical to [`allocate_rates`] but designed for callers
/// that re-arbitrate on every rate epoch: scratch vectors are kept between
/// calls (no per-call heap allocation once warm) and flow specs are
/// *borrowed* through a re-iterable iterator, so callers holding flows in
/// an arena never clone a [`FlowSpec`] to arbitrate over them.
#[derive(Debug, Default)]
pub struct Arbiter {
    frozen: Vec<bool>,
    agg: Vec<f64>,
    remaining: Vec<f64>,
}

impl Arbiter {
    /// A fresh arbiter with empty scratch state.
    pub fn new() -> Self {
        Arbiter::default()
    }

    /// Compute the max–min-fair allocation for the flows yielded by
    /// `flows` (the iterator is re-walked once per filling round, hence
    /// `Clone`), writing one rate per flow into `out` (cleared first).
    ///
    /// Inputs are validated with debug assertions only; the public
    /// [`allocate_rates`] wrapper performs the hard-panicking validation
    /// documented there.
    pub fn allocate<'a, I>(&mut self, capacities: &[f64], flows: I, out: &mut Vec<f64>)
    where
        I: Iterator<Item = &'a FlowSpec> + Clone,
    {
        out.clear();
        out.extend(flows.clone().map(|_| 0.0f64));
        let n = out.len();
        if n == 0 {
            return;
        }

        self.frozen.clear();
        self.frozen.resize(n, false);
        self.remaining.clear();
        self.remaining.extend_from_slice(capacities);
        let frozen = &mut self.frozen;
        let remaining = &mut self.remaining;
        // Current common fill level for all unfrozen flows.
        let mut level = 0.0f64;

        loop {
            // Aggregate demand coefficient of unfrozen flows on each
            // resource.
            self.agg.clear();
            self.agg.resize(capacities.len(), 0.0);
            let agg = &mut self.agg;
            let mut unfrozen_count = 0usize;
            for (i, f) in flows.clone().enumerate() {
                if frozen[i] {
                    continue;
                }
                unfrozen_count += 1;
                for &(r, coeff) in &f.demand {
                    debug_assert!(r < capacities.len(), "flow {i} uses unknown resource {r}");
                    debug_assert!(coeff > 0.0 && coeff.is_finite());
                    agg[r] += coeff;
                }
            }
            if unfrozen_count == 0 {
                break;
            }

            // How much further can the common level rise before a resource
            // saturates?
            let mut dl_resource = f64::INFINITY;
            for (r, &a) in agg.iter().enumerate() {
                if a > 0.0 {
                    dl_resource = dl_resource.min(remaining[r] / a);
                }
            }
            // ... or before some unfrozen flow hits its cap?
            let mut dl_cap = f64::INFINITY;
            for (i, f) in flows.clone().enumerate() {
                if !frozen[i] {
                    dl_cap = dl_cap.min(f.cap - level);
                }
            }

            let dl = dl_resource.min(dl_cap);
            if !dl.is_finite() {
                // Unfrozen flows exist with no resource usage and infinite
                // caps; they are unconstrained. Give them an arbitrary huge
                // rate.
                for (i, f) in flows.clone().enumerate() {
                    if !frozen[i] {
                        out[i] = f.cap.min(f64::MAX);
                        frozen[i] = true;
                    }
                }
                break;
            }

            level += dl.max(0.0);

            // Charge the capacity consumed by this rise.
            for (r, &a) in agg.iter().enumerate() {
                remaining[r] -= a * dl;
            }

            // Freeze flows that hit their cap at the new level.
            let mut any_frozen = false;
            for (i, f) in flows.clone().enumerate() {
                if !frozen[i] && level >= f.cap - 1e-12 * f.cap.max(1.0) {
                    out[i] = f.cap;
                    frozen[i] = true;
                    any_frozen = true;
                }
            }
            // Freeze flows on any saturated resource.
            for (r, rem) in remaining.iter().enumerate() {
                if agg[r] > 0.0 && *rem <= 1e-9 * capacities[r] {
                    for (i, f) in flows.clone().enumerate() {
                        if !frozen[i] && f.demand.iter().any(|&(fr, _)| fr == r) {
                            out[i] = level;
                            frozen[i] = true;
                            any_frozen = true;
                        }
                    }
                }
            }
            if !any_frozen {
                // Defensive: should be impossible since dl froze something,
                // but guarantee termination against floating-point corner
                // cases.
                for i in 0..n {
                    if !frozen[i] {
                        out[i] = level;
                        frozen[i] = true;
                    }
                }
                break;
            }
        }
    }
}

/// Convenience: aggregate throughput `sum(rate[i])` of an allocation.
pub fn aggregate(rates: &[f64]) -> f64 {
    rates.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDR: ResourceId = 0;
    const MCD: ResourceId = 1;

    fn caps() -> Vec<f64> {
        vec![90e9, 400e9]
    }

    #[test]
    fn empty_flow_set() {
        assert!(allocate_rates(&caps(), &[]).is_empty());
    }

    #[test]
    fn single_capped_flow_gets_its_cap() {
        let flows = vec![FlowSpec {
            demand: vec![(DDR, 1.0), (MCD, 1.0)],
            cap: 4.8e9,
        }];
        let r = allocate_rates(&caps(), &flows);
        assert!((r[0] - 4.8e9).abs() < 1.0);
    }

    #[test]
    fn uncapped_flow_limited_by_bottleneck_resource() {
        let flows = vec![FlowSpec {
            demand: vec![(DDR, 1.0), (MCD, 1.0)],
            cap: f64::INFINITY,
        }];
        let r = allocate_rates(&caps(), &flows);
        assert!((r[0] - 90e9).abs() < 1.0, "DDR is the bottleneck");
    }

    /// Reproduces the paper's Eq. 3: below DDR saturation each copy thread
    /// contributes S_copy; past saturation they share DDR_max.
    #[test]
    fn copy_threads_saturate_ddr_like_eq3() {
        let s_copy = 4.8e9;
        for p in [1usize, 4, 8, 16, 18, 19, 32, 64] {
            let flows: Vec<FlowSpec> = (0..p)
                .map(|_| FlowSpec {
                    demand: vec![(DDR, 1.0), (MCD, 1.0)],
                    cap: s_copy,
                })
                .collect();
            let r = allocate_rates(&caps(), &flows);
            let agg = aggregate(&r);
            let expect = (p as f64 * s_copy).min(90e9);
            assert!(
                (agg - expect).abs() < 1e3,
                "p={p}: aggregate {agg} != expected {expect}"
            );
            // Fairness: all flows identical => all rates identical.
            for w in r.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-3);
            }
        }
    }

    /// Reproduces the paper's Eq. 5: compute threads get MCDRAM bandwidth
    /// left over after the copy threads take their share.
    #[test]
    fn compute_threads_share_leftover_mcdram_like_eq5() {
        let s_copy = 4.8e9;
        let s_comp = 6.78e9;
        let p_copy = 8usize; // 8 in + 8 out in paper terms => use 16 total
        let p_comp = 64usize;
        let mut flows: Vec<FlowSpec> = Vec::new();
        for _ in 0..(2 * p_copy) {
            flows.push(FlowSpec {
                demand: vec![(DDR, 1.0), (MCD, 1.0)],
                cap: s_copy,
            });
        }
        for _ in 0..p_comp {
            flows.push(FlowSpec {
                demand: vec![(MCD, 1.0)],
                cap: s_comp,
            });
        }
        let r = allocate_rates(&caps(), &flows);
        let copy_agg: f64 = r[..2 * p_copy].iter().sum();
        let comp_agg: f64 = r[2 * p_copy..].iter().sum();
        // 16 copy threads demand 76.8 GB/s < DDR_max, so they are uncapped
        // by resources; they take 76.8 of MCDRAM too.
        assert!((copy_agg - 76.8e9).abs() < 1e3);
        // 64 compute threads want 433.9 GB/s but only 400-76.8=323.2 remains.
        assert!(
            (comp_agg - (400e9 - 76.8e9)).abs() < 1e6,
            "comp_agg={comp_agg}"
        );
    }

    #[test]
    fn heterogeneous_caps_are_max_min_fair() {
        // Two flows on one resource of capacity 10: caps 2 and infinity.
        // Max-min: flow0 = 2, flow1 = 8.
        let flows = vec![
            FlowSpec::single(0, 1.0, 2.0),
            FlowSpec::single(0, 1.0, f64::INFINITY),
        ];
        let r = allocate_rates(&[10.0], &flows);
        assert!((r[0] - 2.0).abs() < 1e-9);
        assert!((r[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_weighting_charges_resources_proportionally() {
        // A flow with coefficient 2 on a resource of capacity 10 can run at
        // most 5 logical bytes/s.
        let flows = vec![FlowSpec::single(0, 2.0, f64::INFINITY)];
        let r = allocate_rates(&[10.0], &flows);
        assert!((r[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn demandless_flow_gets_its_cap() {
        let flows = vec![FlowSpec {
            demand: vec![],
            cap: 7.0,
        }];
        let r = allocate_rates(&[10.0], &flows);
        assert_eq!(r[0], 7.0);
    }

    #[test]
    fn zero_cap_flow_gets_zero_without_blocking_others() {
        let flows = vec![
            FlowSpec::single(0, 1.0, 0.0),
            FlowSpec::single(0, 1.0, f64::INFINITY),
        ];
        let r = allocate_rates(&[10.0], &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multi_bottleneck_cascade() {
        // Flow A uses resource 0 only; flows B, C use both 0 and 1.
        // Capacities: r0 = 30, r1 = 10.
        // Progressive filling: all rise to 5 (r1 saturates: 5+5=10), B and C
        // freeze; A continues to 30 - 10 = 20.
        let flows = vec![
            FlowSpec::single(0, 1.0, f64::INFINITY),
            FlowSpec {
                demand: vec![(0, 1.0), (1, 1.0)],
                cap: f64::INFINITY,
            },
            FlowSpec {
                demand: vec![(0, 1.0), (1, 1.0)],
                cap: f64::INFINITY,
            },
        ];
        let r = allocate_rates(&[30.0, 10.0], &flows);
        assert!((r[1] - 5.0).abs() < 1e-9);
        assert!((r[2] - 5.0).abs() < 1e-9);
        assert!((r[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn arbiter_reuse_matches_fresh_allocation() {
        // One arbiter instance reused across differently-sized flow sets
        // must produce exactly what a fresh allocate_rates call produces.
        let mut arb = Arbiter::new();
        let mut out = Vec::new();
        let sets: Vec<Vec<FlowSpec>> = vec![
            (0..7)
                .map(|i| FlowSpec {
                    demand: vec![(DDR, 1.0), (MCD, 1.0)],
                    cap: 4.8e9 + i as f64,
                })
                .collect(),
            vec![FlowSpec::single(MCD, 2.0, f64::INFINITY)],
            vec![],
            (0..40).map(|_| FlowSpec::single(DDR, 1.0, 4.8e9)).collect(),
        ];
        for flows in &sets {
            arb.allocate(&caps(), flows.iter(), &mut out);
            let fresh = allocate_rates(&caps(), flows);
            assert_eq!(out, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn panics_on_unknown_resource() {
        let flows = vec![FlowSpec::single(3, 1.0, 1.0)];
        allocate_rates(&[10.0], &flows);
    }

    #[test]
    #[should_panic(expected = "non-positive capacity")]
    fn panics_on_bad_capacity() {
        allocate_rates(&[0.0], &[]);
    }

    #[test]
    #[should_panic(expected = "bad coefficient")]
    fn panics_on_bad_coefficient() {
        let flows = vec![FlowSpec::single(0, -1.0, 1.0)];
        allocate_rates(&[10.0], &flows);
    }
}
