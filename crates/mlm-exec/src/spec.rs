//! The shared description of one chunked execution.
//!
//! Moved here from `mlm_core::pipeline` (which re-exports it) so that
//! every backend — host thread pools, the op-level simulator, recorders —
//! speaks the same spec without depending on `mlm-core`.

use serde::{Deserialize, Serialize};

use crate::drive::{RING_SLOTS, STENCIL_RING_SLOTS};
use crate::placement::Placement;

/// Which compute family the pipeline runs over its chunks.
///
/// The §3 schedule (stage in, compute, stage out over a rotating buffer
/// ring) is workload-generic; what differs per family is the kernel's
/// data footprint — and therefore the dependency edges and ring depth the
/// plan layer emits. `Map` is the paper's merge-benchmark shape (each
/// chunk is independent); `Stencil` is the first out-of-core family with
/// *inter-chunk* dependencies (halo reads from both staged neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Workload {
    /// Chunk-local kernel: compute on chunk `c` touches only chunk `c`.
    #[default]
    Map,
    /// Out-of-core 2D stencil over a row-partitioned grid: compute on
    /// chunk `c` also reads `halo_bytes` of boundary rows from each
    /// adjacent staged chunk (`c - 1` and `c + 1`), so the plan keeps
    /// separate input and output buffers per slot and a deeper ring.
    Stencil {
        /// Bytes of boundary data read from each neighbouring chunk.
        halo_bytes: u64,
    },
}

impl Workload {
    /// Short family name, used in plan metadata and diagnostics.
    pub fn family(&self) -> &'static str {
        match self {
            Workload::Map => "map",
            Workload::Stencil { .. } => "stencil",
        }
    }
}

/// Full description of one chunked execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Total bytes to stream through the pipeline.
    pub total_bytes: u64,
    /// Chunk (and buffer) size in bytes.
    pub chunk_bytes: u64,
    /// Copy-in pool size (ignored for [`Placement::Implicit`]).
    pub p_in: usize,
    /// Copy-out pool size (ignored for [`Placement::Implicit`]).
    pub p_out: usize,
    /// Compute pool size.
    pub p_comp: usize,
    /// Read+write passes the kernel makes over each chunk (the merge
    /// benchmark's `repeats`).
    pub compute_passes: u32,
    /// Per-thread compute traffic cap in bytes/s (the paper's `S_comp`).
    pub compute_rate: f64,
    /// Per-thread copy rate cap in bytes/s (the paper's `S_copy`).
    pub copy_rate: f64,
    /// Buffer placement.
    pub placement: Placement,
    /// `true` = the paper's lockstep steps (a barrier after every step,
    /// matching the model's `max(T_copy, T_comp)` structure);
    /// `false` = pure dataflow dependencies (buffer-recycling only), an
    /// ablation the paper leaves as future work.
    pub lockstep: bool,
    /// Simulated DDR base address of the source data (used by cache-mode
    /// accesses).
    pub data_addr: u64,
    /// Which compute family runs over the chunks. Defaults to [`Workload::Map`]
    /// (the paper's chunk-local kernels), so serialized specs from before
    /// the plan-IR refactor deserialize unchanged.
    #[serde(default)]
    pub workload: Workload,
}

impl PipelineSpec {
    /// Number of chunks (the last may be ragged).
    pub fn n_chunks(&self) -> usize {
        assert!(self.chunk_bytes > 0, "chunk_bytes must be positive");
        self.total_bytes.div_ceil(self.chunk_bytes) as usize
    }

    /// Size of chunk `c` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_chunks()`. Out-of-range chunks used to
    /// return 0, which silently produced empty work items when a caller's
    /// chunk arithmetic drifted from the spec's; failing loudly here turns
    /// those geometry mismatches into immediate, debuggable panics.
    pub fn chunk_size(&self, c: usize) -> u64 {
        let n = self.n_chunks();
        assert!(c < n, "chunk index {c} out of range (spec has {n} chunks)");
        let start = c as u64 * self.chunk_bytes;
        self.chunk_bytes.min(self.total_bytes - start)
    }

    /// Buffer-ring depth the schedule rotates over: three slots for
    /// chunk-local workloads (paper Fig. 2), four for the stencil family
    /// (compute on chunk `c` reads the staged neighbours `c - 1` and
    /// `c + 1`, so a slot may only be recycled once *three* computes have
    /// read it).
    pub fn ring_slots(&self) -> usize {
        match self.workload {
            Workload::Map => RING_SLOTS,
            Workload::Stencil { .. } => STENCIL_RING_SLOTS,
        }
    }

    /// Chunk-sized buffers each ring slot owns: one for chunk-local
    /// kernels (computed in place), two (input + output) for stencils —
    /// an in-place stencil would corrupt the boundary rows its
    /// neighbours' computes still have to read.
    pub fn buffers_per_slot(&self) -> u64 {
        match self.workload {
            Workload::Map => 1,
            Workload::Stencil { .. } => 2,
        }
    }

    /// Bytes of chunk-buffer capacity the pipeline keeps resident: the
    /// rotating ring of `slots` chunk buffers (doubled for workloads with
    /// separate input/output buffers), or nothing for
    /// [`Placement::Implicit`] (which owns no buffers at all).
    ///
    /// For [`Placement::Hbw`] this is the MCDRAM capacity an admission
    /// controller must reserve before letting the job run; the same number
    /// feeds the aggregate-oversubscription lint.
    pub fn buffer_footprint(&self, slots: usize) -> u64 {
        match self.placement {
            Placement::Implicit => 0,
            Placement::Hbw | Placement::Ddr => self
                .chunk_bytes
                .saturating_mul(slots as u64)
                .saturating_mul(self.buffers_per_slot()),
        }
    }

    /// Total simulated threads the schedule occupies.
    pub fn threads(&self) -> usize {
        match self.placement {
            Placement::Implicit => self.p_comp,
            _ => self.p_in + self.p_out + self.p_comp,
        }
    }

    /// Basic feasibility checks shared by all backends.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_bytes == 0 {
            return Err("total_bytes must be positive".into());
        }
        if self.chunk_bytes == 0 {
            return Err("chunk_bytes must be positive".into());
        }
        if self.p_comp == 0 {
            return Err("need at least one compute thread".into());
        }
        if self.placement != Placement::Implicit && (self.p_in == 0 || self.p_out == 0) {
            return Err("explicit pipelines need copy-in and copy-out threads".into());
        }
        if self.compute_passes == 0 {
            return Err("compute_passes must be >= 1".into());
        }
        // `<= 0.0` alone lets NaN through (every NaN comparison is false);
        // a NaN rate would reach the op validator as a confusing BadOp.
        if !(self.compute_rate > 0.0
            && self.compute_rate.is_finite()
            && self.copy_rate > 0.0
            && self.copy_rate.is_finite())
        {
            return Err("rates must be positive and finite".into());
        }
        if let Workload::Stencil { halo_bytes } = self.workload {
            if self.placement == Placement::Implicit {
                return Err(
                    "stencil workloads need explicit staging: implicit cache mode has no \
                     halo buffers to exchange through"
                        .into(),
                );
            }
            if halo_bytes >= self.chunk_bytes {
                return Err(format!(
                    "stencil halo of {halo_bytes} bytes must be smaller than the \
                     {}-byte chunk (wider halos reach past the adjacent chunk)",
                    self.chunk_bytes
                ));
            }
        }
        Ok(())
    }

    /// Check that the byte geometry is expressible in elements of
    /// `elem_bytes` each, as the host backend requires.
    ///
    /// The host pipeline carves `data: &[T]` into chunks of
    /// `chunk_bytes / size_of::<T>()` elements. If `chunk_bytes` is not a
    /// multiple of the element size, that division rounds down and the
    /// host's chunk boundaries silently drift away from the spec's (and
    /// the simulator's) byte boundaries — every chunk after the first
    /// covers different data than the model says it does. Reject such
    /// specs instead of mis-chunking.
    pub fn validate_elem_size(&self, elem_bytes: usize) -> Result<(), String> {
        let elem = elem_bytes.max(1) as u64;
        if self.chunk_bytes < elem {
            return Err(format!(
                "chunk_bytes = {} is smaller than one {elem}-byte element",
                self.chunk_bytes
            ));
        }
        if !self.chunk_bytes.is_multiple_of(elem) {
            return Err(format!(
                "chunk_bytes = {} is not a multiple of the {elem}-byte element size; \
                 host chunk boundaries would not match the spec's byte boundaries",
                self.chunk_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PipelineSpec {
        PipelineSpec {
            total_bytes: 100,
            chunk_bytes: 30,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn stencil_spec(halo_bytes: u64) -> PipelineSpec {
        let mut s = spec();
        s.workload = Workload::Stencil { halo_bytes };
        s
    }

    #[test]
    fn chunk_math_handles_ragged_tail() {
        let s = spec();
        assert_eq!(s.n_chunks(), 4);
        assert_eq!(s.chunk_size(0), 30);
        assert_eq!(s.chunk_size(2), 30);
        assert_eq!(s.chunk_size(3), 10);
        s.validate().unwrap();
    }

    #[test]
    fn exact_division_has_no_tail() {
        let mut s = spec();
        s.total_bytes = 90;
        assert_eq!(s.n_chunks(), 3);
        assert_eq!(s.chunk_size(2), 30);
    }

    #[test]
    #[should_panic(expected = "chunk index 4 out of range")]
    fn chunk_size_rejects_out_of_range_index() {
        let s = spec();
        // spec() has 4 chunks (0..=3); index 4 used to yield a silent 0.
        s.chunk_size(4);
    }

    #[test]
    fn elem_size_validation() {
        let mut s = spec();
        s.chunk_bytes = 32;
        assert!(s.validate_elem_size(8).is_ok());
        assert!(s.validate_elem_size(1).is_ok());
        // 30 % 8 != 0: chunk boundaries would fall mid-element.
        s.chunk_bytes = 30;
        assert!(s.validate_elem_size(8).is_err());
        // Chunk smaller than one element.
        s.chunk_bytes = 4;
        assert!(s.validate_elem_size(8).is_err());
        // Zero-sized types are treated as 1-byte for geometry purposes.
        s.chunk_bytes = 30;
        assert!(s.validate_elem_size(0).is_ok());
    }

    #[test]
    fn buffer_footprint_by_placement() {
        let mut s = spec();
        assert_eq!(s.buffer_footprint(3), 90);
        s.placement = Placement::Ddr;
        assert_eq!(s.buffer_footprint(3), 90);
        s.placement = Placement::Implicit;
        assert_eq!(s.buffer_footprint(3), 0);
    }

    #[test]
    fn thread_accounting_by_placement() {
        let mut s = spec();
        assert_eq!(s.threads(), 8);
        s.placement = Placement::Implicit;
        assert_eq!(s.threads(), 4);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = spec();
        s.total_bytes = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.p_comp = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.p_in = 0;
        assert!(s.validate().is_err());

        // Implicit mode doesn't need copy pools.
        let mut s = spec();
        s.placement = Placement::Implicit;
        s.p_in = 0;
        s.p_out = 0;
        assert!(s.validate().is_ok());

        let mut s = spec();
        s.compute_passes = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.copy_rate = 0.0;
        assert!(s.validate().is_err());

        // NaN compares false with everything, so `<= 0.0` alone missed it.
        let mut s = spec();
        s.compute_rate = f64::NAN;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.copy_rate = f64::INFINITY;
        assert!(s.validate().is_err());
    }

    #[test]
    fn spec_serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: PipelineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        let s = stencil_spec(8);
        let json = serde_json::to_string(&s).unwrap();
        let back: PipelineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn specs_without_a_workload_field_deserialize_as_map() {
        // Serialized specs predating the plan-IR refactor carry no
        // `workload` key; they must keep meaning chunk-local kernels.
        let json = serde_json::to_string(&spec()).unwrap();
        let stripped = json.replace(",\"workload\":\"Map\"", "");
        assert_ne!(json, stripped, "test must actually strip the field");
        let back: PipelineSpec = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, spec());
    }

    #[test]
    fn stencil_geometry_deepens_the_ring_and_doubles_the_buffers() {
        let s = spec();
        assert_eq!(s.ring_slots(), 3);
        assert_eq!(s.buffers_per_slot(), 1);
        let t = stencil_spec(8);
        assert_eq!(t.ring_slots(), 4);
        assert_eq!(t.buffers_per_slot(), 2);
        // 4 slots x 2 buffers x 30-byte chunks.
        assert_eq!(t.buffer_footprint(t.ring_slots()), 240);
        t.validate().unwrap();
    }

    #[test]
    fn stencil_validation_rejects_infeasible_shapes() {
        // Implicit cache mode has no staging buffers to exchange halos in.
        let mut s = stencil_spec(8);
        s.placement = Placement::Implicit;
        s.p_in = 0;
        s.p_out = 0;
        assert!(s.validate().unwrap_err().contains("explicit staging"));

        // A halo as wide as the chunk would reach past the adjacent chunk.
        let s = stencil_spec(30);
        assert!(s.validate().is_err());
        let s = stencil_spec(29);
        assert!(s.validate().is_ok());
    }
}
