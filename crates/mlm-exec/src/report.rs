//! The unified run-statistics vocabulary.
//!
//! Every backend reports the same shape: per-stage thread/busy/wait
//! accounting plus whole-run chunk and step counts. `mlm-core`'s old
//! `HostRunStats`/`StageStats` are now aliases of these types, so existing
//! callers (benches, experiments, serve) keep compiling unchanged.

use std::time::Duration;

/// Per-stage timing of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageReport {
    /// Worker threads dedicated to (or sharing) this stage.
    pub threads: usize,
    /// Cumulative task execution time, summed across workers.
    pub busy: Duration,
    /// Time the stage's coordinator spent blocked waiting for a buffer
    /// dependency (dataflow runs only; zero under lockstep, where waiting
    /// happens inside the shared pool's step barrier).
    pub wait: Duration,
}

impl StageReport {
    /// Fraction of `threads x elapsed` this stage spent executing tasks.
    pub fn occupancy(&self, elapsed: Duration) -> f64 {
        if self.threads == 0 || elapsed.is_zero() {
            return 0.0;
        }
        self.busy.as_secs_f64() / (self.threads as f64 * elapsed.as_secs_f64())
    }
}

/// Result of one pipeline run on any backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Number of chunks processed.
    pub chunks: usize,
    /// Number of schedule steps (`chunks + 2` for explicit pipelines;
    /// reported for dataflow runs too so the two modes compare directly,
    /// even though dataflow has no step barriers).
    pub steps: usize,
    /// Wall-clock duration of the chunked phase (zero on virtual-time
    /// backends, whose cost comes from the simulator's engine instead).
    pub elapsed: Duration,
    /// Copy-in stage timing (zero `threads` under implicit placement).
    pub copy_in: StageReport,
    /// Compute stage timing.
    pub compute: StageReport,
    /// Copy-out stage timing (zero `threads` under implicit placement).
    pub copy_out: StageReport,
}

impl RunReport {
    /// An all-zero report for a run that did nothing (empty input).
    pub fn empty() -> Self {
        RunReport {
            chunks: 0,
            steps: 0,
            elapsed: Duration::ZERO,
            copy_in: StageReport::default(),
            compute: StageReport::default(),
            copy_out: StageReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_busy_over_capacity() {
        let s = StageReport {
            threads: 4,
            busy: Duration::from_secs(2),
            wait: Duration::ZERO,
        };
        let occ = s.occupancy(Duration::from_secs(1));
        assert!((occ - 0.5).abs() < 1e-12);
        assert_eq!(
            StageReport::default().occupancy(Duration::from_secs(1)),
            0.0
        );
        assert_eq!(s.occupancy(Duration::ZERO), 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = RunReport::empty();
        assert_eq!(r.chunks, 0);
        assert_eq!(r.steps, 0);
        assert!(r.elapsed.is_zero());
    }
}
