//! The shared dependency-graph model and the static schedule verifier.
//!
//! [`crate::drive`] emits one dependency DAG per spec: chunk-stage actions
//! and barriers, ordered by tokens. Two consumers share the model defined
//! here (DESIGN.md S22):
//!
//! * the **fuzzer** ([`crate::fuzz`]) records the DAG through
//!   [`GraphRecorder`]-equivalent bookkeeping and *samples* adversarial
//!   linearizations of it;
//! * the **static analyzer** ([`analyze`]) proves properties over *every*
//!   linearization without enumerating them, via reachability on the
//!   transitive closure:
//!
//!   | check | code | property |
//!   |-------|------|----------|
//!   | [`GraphCheck::Race`]        | G001 | same-slot actions are dependency-ordered (incl. poison-drain) |
//!   | [`GraphCheck::Deadlock`]    | G002 | no cycles, no starved waiters |
//!   | [`GraphCheck::Capacity`]    | G003 | peak HBW-resident bytes fit the MCDRAM budget |
//!   | [`GraphCheck::RingWidth`]   | G004 | no antichain of live chunks exceeds the buffer ring |
//!   | [`GraphCheck::DeadToken`]   | G005 | every completion is consumed (advisory) |
//!   | [`GraphCheck::Unreachable`] | G006 | no dangling/self dependencies, no unrunnable ops |
//!
//! The capacity and ring-width bounds come from a weighted-antichain
//! (Dilworth / minimum chain cover) analysis of the chunk liveness order:
//! chunk `c` precedes chunk `d` when `c`'s copy-out happens-before `d`'s
//! copy-in, so the maximum antichain is exactly the largest set of chunks
//! the dependency edges allow to be resident at once. The bound is tight
//! for the graphs `drive()` emits and conservative in general (it ignores
//! slot identities, so it never under-reports occupancy).
//!
//! [`Discipline`] re-expresses the fuzzer's buggy [`Construction`]s
//! (dropped recycle edges, notify-one wakeups, missing predicate rechecks,
//! poison without cancellation) as *effective-edge weakenings*, which is
//! how the analyzer flags each of the four seeded bugs statically — no
//! fuzz seeds involved.
//!
//! [`Construction`]: crate::fuzz::Construction

use std::collections::BTreeMap;
use std::fmt;

use crate::backend::{Backend, ChunkAction, Stage};
use crate::drive::{drive, RING_SLOTS};
use crate::error::DriveError;
use crate::placement::{Capabilities, Placement};
use crate::spec::PipelineSpec;

// ---------------------------------------------------------------------------
// The recorded graph
// ---------------------------------------------------------------------------

/// One node of a recorded schedule graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphNode {
    /// A chunk-stage action ([`Backend::issue`]).
    Action(ChunkAction),
    /// A lockstep step barrier ([`Backend::step_barrier`]).
    Barrier,
}

impl GraphNode {
    /// The action, if this node is one.
    pub fn action(&self) -> Option<ChunkAction> {
        match self {
            GraphNode::Action(a) => Some(*a),
            GraphNode::Barrier => None,
        }
    }
}

/// The dependency DAG `drive()` emits: nodes in issue order, each with the
/// indices of the nodes whose completion it waits for.
///
/// The graphs `drive()` records are acyclic with every dependency pointing
/// at an earlier node; hand-built graphs may violate both, which is
/// exactly what [`analyze`] diagnoses (G002/G006).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    nodes: Vec<GraphNode>,
    deps: Vec<Vec<usize>>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Append a node with its dependency list; returns the node's index.
    pub fn push(&mut self, node: GraphNode, deps: Vec<usize>) -> usize {
        self.nodes.push(node);
        self.deps.push(deps);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// The node at `i`.
    pub fn node(&self, i: usize) -> &GraphNode {
        &self.nodes[i]
    }

    /// The dependency list of node `i`.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// The action at node `i`, if it is one.
    pub fn action(&self, i: usize) -> Option<ChunkAction> {
        self.nodes[i].action()
    }

    /// The node index of the action `(stage, chunk)`, if the schedule
    /// issues it.
    pub fn find_action(&self, stage: Stage, chunk: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, GraphNode::Action(a) if a.stage == stage && a.chunk == chunk))
    }

    /// Dependents (reverse edges) of every node, in node order. Edges to
    /// out-of-range or self targets are skipped.
    pub fn dependents(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut out = vec![Vec::new(); n];
        for (i, dl) in self.deps.iter().enumerate() {
            for &d in dl {
                if d < n && d != i {
                    out[d].push(i);
                }
            }
        }
        out
    }

    /// True when the edge `dep -> node` is a buffer-recycling edge (a
    /// copy-in waiting for the copy-out that frees its slot). The
    /// [`Discipline::drop_recycle`] weakening erases exactly these.
    pub fn is_recycle_edge(&self, node: usize, dep: usize) -> bool {
        matches!(
            (&self.nodes[node], &self.nodes[dep]),
            (GraphNode::Action(a), GraphNode::Action(d))
                if a.stage == Stage::CopyIn && d.stage == Stage::CopyOut
        )
    }

    /// Human-readable one-line description of node `i`, for traces.
    pub fn describe(&self, i: usize) -> String {
        match self.nodes.get(i) {
            Some(GraphNode::Action(a)) => format!(
                "{:?} of chunk {} (slot {}, node {i})",
                a.stage, a.chunk, a.slot
            ),
            Some(GraphNode::Barrier) => format!("step barrier (node {i})"),
            None => format!("node {i} (out of range)"),
        }
    }
}

/// A [`Backend`] that records the dependency graph and performs no work.
///
/// Tokens are node indices, so the recorded [`DepGraph`] is exactly the
/// DAG any other backend would receive.
#[derive(Debug, Default)]
pub struct GraphRecorder {
    graph: DepGraph,
}

impl GraphRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        GraphRecorder::default()
    }

    /// The recorded graph.
    pub fn into_graph(self) -> DepGraph {
        self.graph
    }
}

impl Backend for GraphRecorder {
    type Token = usize;

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, deps: &[usize]) -> usize {
        self.graph.push(GraphNode::Action(action), deps.to_vec())
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, after: &[usize]) -> usize {
        self.graph.push(GraphNode::Barrier, after.to_vec())
    }

    fn finish(&mut self, _spec: &PipelineSpec) -> Result<(), String> {
        Ok(())
    }
}

/// Record the dependency graph `drive()` emits for `spec` without
/// executing anything. Fails only when the spec itself cannot be driven
/// ([`DriveError::Spec`]).
pub fn record_graph(spec: &PipelineSpec) -> Result<DepGraph, DriveError> {
    let mut recorder = GraphRecorder::new();
    drive(&mut recorder, spec)?;
    Ok(recorder.into_graph())
}

// ---------------------------------------------------------------------------
// The slot phase model (shared with the fuzzer's executor)
// ---------------------------------------------------------------------------

/// Phase state of one modeled ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No chunk resident.
    Free,
    /// Chunk loaded with its input value, not yet computed.
    Loaded(usize, u64),
    /// Chunk computed, ready to drain.
    Computed(usize, u64),
    /// A kernel panicked mid-compute; nothing may touch the slot.
    Poisoned(usize),
}

impl SlotState {
    /// Human-readable state name, for violation messages.
    pub fn describe(self) -> String {
        match self {
            SlotState::Free => "Free".into(),
            SlotState::Loaded(c, _) => format!("Loaded(chunk {c})"),
            SlotState::Computed(c, _) => format!("Computed(chunk {c})"),
            SlotState::Poisoned(c) => format!("Poisoned(chunk {c})"),
        }
    }
}

/// A phase-machine transition the ring refused.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotError {
    /// The action hit its slot in the wrong phase (overwrite of a live
    /// slot, compute on an unloaded slot, copy-out of stale data).
    Clash {
        /// The offending action.
        action: ChunkAction,
        /// The slot state at the time, rendered.
        state: String,
    },
    /// The action touched a slot poisoned by a kernel panic.
    Poisoned {
        /// The offending action.
        action: ChunkAction,
    },
}

/// The chunk-granular buffer-ring phase machine: copy-in requires a free
/// slot, compute a loaded one, copy-out a computed one; a poisoned slot
/// refuses everything. One value per chunk tracks data integrity.
///
/// This is the single ring model both the fuzzer's adversarial executor
/// and the analyzer's poison reasoning are defined against.
#[derive(Debug, Clone)]
pub struct SlotModel {
    slots: Vec<SlotState>,
}

impl SlotModel {
    /// A ring of `slots` free slots.
    pub fn new(slots: usize) -> Self {
        SlotModel {
            slots: vec![SlotState::Free; slots],
        }
    }

    /// The state of slot `s`.
    pub fn state(&self, s: usize) -> SlotState {
        self.slots[s]
    }

    fn entry(&mut self, a: ChunkAction) -> Result<&mut SlotState, SlotError> {
        let slot = &mut self.slots[a.slot];
        if matches!(*slot, SlotState::Poisoned(_)) {
            return Err(SlotError::Poisoned { action: a });
        }
        Ok(slot)
    }

    /// Copy-in: load `value` into the (free) slot of `a`.
    pub fn load(&mut self, a: ChunkAction, value: u64) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Free => {
                *slot = SlotState::Loaded(a.chunk, value);
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// Compute: transform the loaded value of `a`'s chunk with `kernel`.
    pub fn compute(
        &mut self,
        a: ChunkAction,
        kernel: impl FnOnce(u64) -> u64,
    ) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Loaded(c, v) if c == a.chunk => {
                *slot = SlotState::Computed(c, kernel(v));
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// A kernel panic where the compute of `a` would run: poison the slot.
    pub fn poison(&mut self, a: ChunkAction) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Loaded(c, _) if c == a.chunk => {
                *slot = SlotState::Poisoned(c);
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// Copy-out: drain the computed value of `a`'s chunk, freeing the slot.
    pub fn drain(&mut self, a: ChunkAction) -> Result<u64, SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Computed(c, v) if c == a.chunk => {
                *slot = SlotState::Free;
                Ok(v)
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Disciplines and analysis configuration
// ---------------------------------------------------------------------------

/// How an executor honours the recorded dependency edges. The default
/// ([`Discipline::CORRECT`]) honours all of them; each flag is the
/// effective-edge weakening of one of the fuzzer's buggy
/// [`Construction`](crate::fuzz::Construction)s, so the analyzer can prove
/// the same bug classes statically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Discipline {
    /// Ignore copy-out → copy-in buffer-recycling edges.
    pub drop_recycle: bool,
    /// A completion wakes only the statically-first dependent; an edge to
    /// any later dependent delivers no notification (the waiter starves).
    pub notify_one: bool,
    /// A node becomes runnable on its *first* dependency's completion; an
    /// edge `d -> i` is only guaranteed when `d` happens-before every
    /// other dependency of `i` (so no earlier notifier can exist).
    pub no_recheck: bool,
    /// After a kernel panic, dependents are scheduled as if the compute
    /// completed normally (no cancellation).
    pub poison_skip: bool,
}

impl Discipline {
    /// Honour every edge; poison cancels dependents.
    pub const CORRECT: Discipline = Discipline {
        drop_recycle: false,
        notify_one: false,
        no_recheck: false,
        poison_skip: false,
    };
}

/// What [`analyze`] checks a graph against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Buffer-ring depth the slot assignment rotates over.
    pub ring_slots: usize,
    /// Addressable MCDRAM bytes for HBW-placed buffers; `None` skips the
    /// G003 capacity check.
    pub hbw_budget: Option<u64>,
    /// The executor discipline to analyse under.
    pub discipline: Discipline,
    /// Model a kernel panic while computing this chunk (the static form
    /// of the fuzzer's `kernel_panic` fault): prove that nothing outside
    /// the guaranteed-cancelled dependents touches the poisoned slot.
    pub kernel_panic: Option<usize>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            ring_slots: RING_SLOTS,
            hbw_budget: None,
            discipline: Discipline::CORRECT,
            kernel_panic: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Findings and report
// ---------------------------------------------------------------------------

/// The property a [`GraphFinding`] violates. Codes G001–G006 are stable
/// and live alongside `mlm-verify`'s V-series lint ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCheck {
    /// G001 — two actions touch the same ring slot with no dependency
    /// path ordering them (happens-before race), or uncancelled work
    /// touches a poisoned slot.
    Race,
    /// G002 — a dependency cycle, or a waiter whose notification can
    /// never be delivered (starvation): some work can never run.
    Deadlock,
    /// G003 — the peak antichain of live HBW chunks exceeds the MCDRAM
    /// budget.
    Capacity,
    /// G004 — an antichain of in-flight chunks exceeds the buffer ring.
    RingWidth,
    /// G005 — a completion no later node consumes (advisory).
    DeadToken,
    /// G006 — a dangling or self dependency; the op (and everything
    /// downstream of it) can never become runnable.
    Unreachable,
}

impl GraphCheck {
    /// Every check the analyzer runs, in code order (for catalogs).
    pub const ALL: [GraphCheck; 6] = [
        GraphCheck::Race,
        GraphCheck::Deadlock,
        GraphCheck::Capacity,
        GraphCheck::RingWidth,
        GraphCheck::DeadToken,
        GraphCheck::Unreachable,
    ];

    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            GraphCheck::Race => "G001",
            GraphCheck::Deadlock => "G002",
            GraphCheck::Capacity => "G003",
            GraphCheck::RingWidth => "G004",
            GraphCheck::DeadToken => "G005",
            GraphCheck::Unreachable => "G006",
        }
    }

    /// The check's kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            GraphCheck::Race => "graph-race",
            GraphCheck::Deadlock => "graph-deadlock",
            GraphCheck::Capacity => "graph-mcdram-occupancy",
            GraphCheck::RingWidth => "graph-ring-width",
            GraphCheck::DeadToken => "graph-dead-token",
            GraphCheck::Unreachable => "graph-unreachable",
        }
    }

    /// True when a finding of this check makes the schedule unsafe to
    /// run. [`GraphCheck::DeadToken`] is advisory (wasted work, not a
    /// safety violation); everything else is fatal.
    pub fn is_fatal(self) -> bool {
        !matches!(self, GraphCheck::DeadToken)
    }
}

impl fmt::Display for GraphCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One property violation, with a counterexample trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphFinding {
    /// Which property broke.
    pub check: GraphCheck,
    /// One-line description.
    pub message: String,
    /// Counterexample trace: the nodes/chunks that witness the violation,
    /// one human-readable line each.
    pub trace: Vec<String>,
}

/// Everything [`analyze`] proved (or refuted) about one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Nodes analysed.
    pub nodes: usize,
    /// Dependency edges analysed.
    pub edges: usize,
    /// Size of the maximum antichain of concurrently-live chunks — the
    /// worst-case number of resident buffers any legal linearization can
    /// reach.
    pub peak_live_chunks: usize,
    /// `peak_live_chunks × chunk_bytes` for HBW placement, `0` otherwise.
    pub peak_hbw_bytes: u64,
    /// Property violations found; empty means every check passed.
    pub findings: Vec<GraphFinding>,
}

impl GraphReport {
    /// True when no fatal finding was reported (advisory G005 findings
    /// do not make a schedule unsafe).
    pub fn is_safe(&self) -> bool {
        !self.findings.iter().any(|f| f.check.is_fatal())
    }

    /// The distinct check codes that fired, in code order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.findings.iter().map(|f| f.check.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule graph: {} nodes, {} edges, peak {} live chunks ({} HBW bytes)",
            self.nodes, self.edges, self.peak_live_chunks, self.peak_hbw_bytes
        )?;
        for finding in &self.findings {
            write!(f, "\n[{}] {}", finding.check.code(), finding.message)?;
            for line in &finding.trace {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bitset transitive closure
// ---------------------------------------------------------------------------

/// Fixed-width bitset over node indices.
#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// Ancestor sets (`anc[i]` = nodes that happen-before `i`) over the edge
/// lists `deps`, processed in `topo` order.
fn closure(n: usize, deps: &[Vec<usize>], topo: &[usize]) -> Vec<BitSet> {
    let mut anc = vec![BitSet::new(n); n];
    for &i in topo {
        // Move the set out to appease the borrow checker, then put it back.
        let mut mine = std::mem::replace(&mut anc[i], BitSet::new(0));
        for &d in &deps[i] {
            mine.set(d);
            mine.union_with(&anc[d]);
        }
        anc[i] = mine;
    }
    anc
}

/// Kahn topological order over `deps`; `None` when a cycle exists.
fn topo_order(n: usize, deps: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut dependents = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (i, dl) in deps.iter().enumerate() {
        for &d in dl {
            dependents[d].push(i);
            remaining[i] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            remaining[d] -= 1;
            if remaining[d] == 0 {
                queue.push(d);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A directed cycle over `deps`, as a node sequence (first == last), for
/// the G002 counterexample trace. Only called when one exists.
fn find_cycle(n: usize, deps: &[Vec<usize>]) -> Vec<usize> {
    // Iterative DFS with white/gray/black coloring.
    let mut color = vec![0u8; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < deps[node].len() {
                let d = deps[node][*next];
                *next += 1;
                match color[d] {
                    0 => {
                        color[d] = 1;
                        parent[d] = Some(node);
                        stack.push((d, 0));
                    }
                    1 => {
                        // Back edge node -> d: walk parents from node to d.
                        let mut cycle = vec![d];
                        let mut cur = node;
                        while cur != d {
                            cycle.push(cur);
                            cur = parent[cur].expect("on the gray path");
                        }
                        cycle.push(d);
                        cycle.reverse();
                        return cycle;
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    unreachable!("find_cycle called on an acyclic graph")
}

// ---------------------------------------------------------------------------
// Antichain analysis (Dilworth via bipartite matching + König witness)
// ---------------------------------------------------------------------------

fn kuhn_augment(
    u: usize,
    adj: &[Vec<usize>],
    seen: &mut [bool],
    match_l: &mut [Option<usize>],
    match_r: &mut [Option<usize>],
) -> bool {
    for &v in &adj[u] {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        let free = match match_r[v] {
            None => true,
            Some(u2) => kuhn_augment(u2, adj, seen, match_l, match_r),
        };
        if free {
            match_r[v] = Some(u);
            match_l[u] = Some(v);
            return true;
        }
    }
    false
}

/// Maximum antichain of the strict partial order `adj` (edges `c -> d`
/// meaning `c` precedes `d`) over `n` elements, by Dilworth's theorem:
/// max antichain = n − max bipartite matching of the precedence relation,
/// with the witness antichain extracted from the König vertex cover.
fn max_antichain(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut match_l: Vec<Option<usize>> = vec![None; n];
    let mut match_r: Vec<Option<usize>> = vec![None; n];
    let mut matched = 0usize;
    for u in 0..n {
        let mut seen = vec![false; n];
        if kuhn_augment(u, adj, &mut seen, &mut match_l, &mut match_r) {
            matched += 1;
        }
    }
    // König: Z = unmatched left vertices plus everything reachable by
    // alternating (non-matching left→right, matching right→left) paths.
    // The antichain is {c : c_L ∈ Z and c_R ∉ Z} — both copies of c
    // avoid the minimum vertex cover.
    let mut vis_l = vec![false; n];
    let mut vis_r = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&u| match_l[u].is_none()).collect();
    for &u in &queue {
        vis_l[u] = true;
    }
    while let Some(u) = queue.pop() {
        for &v in &adj[u] {
            if match_l[u] == Some(v) || vis_r[v] {
                continue;
            }
            vis_r[v] = true;
            if let Some(u2) = match_r[v] {
                if !vis_l[u2] {
                    vis_l[u2] = true;
                    queue.push(u2);
                }
            }
        }
    }
    let antichain: Vec<usize> = (0..n).filter(|&c| vis_l[c] && !vis_r[c]).collect();
    debug_assert_eq!(antichain.len(), n - matched, "Dilworth/König mismatch");
    antichain
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Prove (or refute) race-, deadlock-, and capacity-safety of `graph` over
/// every linearization, under the configured executor discipline.
///
/// The proofs are exhaustive for the schedule level the graph models: a
/// clean report means *no* interleaving a dependency-honouring executor
/// can produce violates the checked property — the static counterpart of
/// one fuzz seed per linearization.
pub fn analyze(graph: &DepGraph, spec: &PipelineSpec, cfg: &AnalysisConfig) -> GraphReport {
    let n = graph.len();
    let mut findings = Vec::new();

    // G006 — structural validity: dangling and self dependencies, plus
    // everything downstream of one (it can never become runnable).
    let mut invalid = vec![false; n];
    for (i, inv) in invalid.iter_mut().enumerate() {
        for &d in graph.deps(i) {
            if d >= n || d == i {
                *inv = true;
                findings.push(GraphFinding {
                    check: GraphCheck::Unreachable,
                    message: if d == i {
                        format!("{} depends on itself", graph.describe(i))
                    } else {
                        format!(
                            "{} depends on nonexistent node {d} (graph has {n} nodes)",
                            graph.describe(i)
                        )
                    },
                    trace: vec![format!("{} can never become runnable", graph.describe(i))],
                });
            }
        }
    }

    // Work on the valid edge set from here on.
    let valid_deps: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            graph
                .deps(i)
                .iter()
                .copied()
                .filter(|&d| d < n && d != i)
                .collect()
        })
        .collect();

    // G002 — cycle detection. A cyclic graph has no linearizations at
    // all; report the cycle and stop (closure analyses assume a DAG).
    let Some(topo) = topo_order(n, &valid_deps) else {
        let cycle = find_cycle(n, &valid_deps);
        let trace: Vec<String> = cycle.iter().map(|&i| graph.describe(i)).collect();
        findings.push(GraphFinding {
            check: GraphCheck::Deadlock,
            message: format!(
                "dependency cycle of {} nodes: no execution order exists",
                cycle.len() - 1
            ),
            trace,
        });
        return GraphReport {
            nodes: n,
            edges: graph.edge_count(),
            peak_live_chunks: 0,
            peak_hbw_bytes: 0,
            findings,
        };
    };

    let disc = cfg.discipline;

    // Effective edges, step 1: drop_recycle erases the recycling edges.
    let kept: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            valid_deps[i]
                .iter()
                .copied()
                .filter(|&d| !(disc.drop_recycle && graph.is_recycle_edge(i, d)))
                .collect()
        })
        .collect();
    let anc_kept = closure(n, &kept, &topo);

    // Effective edges, step 2: no_recheck keeps an edge `d -> i` only when
    // the executor's run-on-first-notification shortcut cannot fire before
    // `d` completes — i.e. `d` happens-before every other dependency of
    // `i`, so whichever notification arrives first, `d` is already done.
    let eff: Vec<Vec<usize>> = if disc.no_recheck {
        (0..n)
            .map(|i| {
                let dl = &kept[i];
                dl.iter()
                    .copied()
                    .filter(|&d| dl.iter().all(|&o| o == d || anc_kept[o].get(d)))
                    .collect()
            })
            .collect()
    } else {
        kept.clone()
    };
    let anc = if disc.no_recheck {
        closure(n, &eff, &topo)
    } else {
        anc_kept
    };
    let ordered = |a: usize, b: usize| anc[b].get(a) || anc[a].get(b);

    // G002 — notify-one starvation: a waiter that is not the statically
    // first dependent of one of its dependencies never hears that
    // completion; anything downstream of a starved node starves too.
    if disc.notify_one {
        let dependents = {
            let mut out = vec![Vec::new(); n];
            for (i, dl) in kept.iter().enumerate() {
                for &d in dl {
                    out[d].push(i);
                }
            }
            out
        };
        let mut starved_by: Vec<Option<usize>> = vec![None; n];
        for (i, dl) in kept.iter().enumerate() {
            for &d in dl {
                if dependents[d].first() != Some(&i) {
                    starved_by[i] = Some(d);
                }
            }
        }
        let mut stuck = vec![false; n];
        for &i in &topo {
            stuck[i] = starved_by[i].is_some() || kept[i].iter().any(|&d| stuck[d]);
        }
        let stuck_count = stuck.iter().filter(|&&s| s).count();
        if stuck_count > 0 {
            let first = (0..n)
                .find(|&i| starved_by[i].is_some())
                .expect("stuck implies a directly starved node");
            let d = starved_by[first].expect("directly starved");
            let favoured = dependents[d][0];
            findings.push(GraphFinding {
                check: GraphCheck::Deadlock,
                message: format!(
                    "notify-one wakeups starve {stuck_count} nodes: lost notifications deadlock the schedule"
                ),
                trace: vec![
                    format!("{} waits on {}", graph.describe(first), graph.describe(d)),
                    format!(
                        "completion of {} wakes only {} (notify-one)",
                        graph.describe(d),
                        graph.describe(favoured)
                    ),
                    format!("{stuck_count} of {n} nodes can never run"),
                ],
            });
        }
    }

    let actions: Vec<(usize, ChunkAction)> = (0..n)
        .filter_map(|i| graph.action(i).map(|a| (i, a)))
        .collect();
    let explicit = spec.placement != Placement::Implicit;

    // G001 — happens-before races: any two actions on the same ring slot
    // must be connected by a dependency path, else some linearization runs
    // them concurrently (the slot phase machine is then violated).
    if explicit {
        let mut by_slot: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(i, a) in &actions {
            by_slot.entry(a.slot).or_default().push(i);
        }
        for (slot, members) in &by_slot {
            let mut unordered: Vec<(usize, usize)> = Vec::new();
            for (k, &i) in members.iter().enumerate() {
                for &j in &members[k + 1..] {
                    if !ordered(i, j) {
                        unordered.push((i, j));
                    }
                }
            }
            if let Some(&(i, j)) = unordered.first() {
                findings.push(GraphFinding {
                    check: GraphCheck::Race,
                    message: format!(
                        "ring slot {slot}: {} action pair(s) with no dependency path between them",
                        unordered.len()
                    ),
                    trace: vec![
                        format!(
                            "{} and {} both touch slot {slot}",
                            graph.describe(i),
                            graph.describe(j)
                        ),
                        "no dependency path orders them under the analysed discipline".into(),
                    ],
                });
            }
        }
    }

    // G001 (poison) — with a modeled kernel panic, everything that is not
    // a guaranteed-cancelled dependent of the panicked compute and runs
    // concurrently with or after it must not touch the poisoned slot.
    if explicit {
        if let Some(k) = cfg.kernel_panic {
            if let Some(p) = graph.find_action(Stage::Compute, k) {
                let slot = k % cfg.ring_slots;
                for &(i, a) in &actions {
                    if i == p || a.slot != slot {
                        continue;
                    }
                    let cancelled = !disc.poison_skip && anc[i].get(p);
                    let before_panic = anc[p].get(i);
                    if !cancelled && !before_panic {
                        findings.push(GraphFinding {
                            check: GraphCheck::Race,
                            message: format!(
                                "poison leak: {} can touch the slot poisoned by the kernel panic on chunk {k}",
                                graph.describe(i)
                            ),
                            trace: vec![
                                format!(
                                    "kernel panic poisons slot {slot} at {}",
                                    graph.describe(p)
                                ),
                                format!(
                                    "{} is not a guaranteed-cancelled dependent and is not ordered before the panic",
                                    graph.describe(i)
                                ),
                            ],
                        });
                    }
                }
            }
        }
    }

    // G003/G004 — chunk liveness antichain. Chunk `c` is live from its
    // first resident action (copy-in; the compute itself in implicit
    // mode) until its last (copy-out). `c` strictly precedes `d` when
    // `c`'s end happens-before `d`'s start, so by Dilworth the maximum
    // antichain of the precedence order is exactly the worst-case number
    // of simultaneously-live chunks any linearization can reach.
    let n_chunks = spec.n_chunks();
    let live_span = |c: usize| -> (Option<usize>, Option<usize>) {
        if explicit {
            (
                graph.find_action(Stage::CopyIn, c),
                graph.find_action(Stage::CopyOut, c),
            )
        } else {
            let comp = graph.find_action(Stage::Compute, c);
            (comp, comp)
        }
    };
    let spans: Vec<(Option<usize>, Option<usize>)> = (0..n_chunks).map(live_span).collect();
    let mut precedes: Vec<Vec<usize>> = vec![Vec::new(); n_chunks];
    for (c, &(_, end_c)) in spans.iter().enumerate() {
        for (d, &(start_d, _)) in spans.iter().enumerate() {
            if let (Some(out_c), Some(in_d)) = (end_c, start_d) {
                if c != d && anc[in_d].get(out_c) {
                    precedes[c].push(d);
                }
            }
        }
    }
    let antichain = max_antichain(n_chunks, &precedes);
    let peak_live_chunks = antichain.len();
    let peak_hbw_bytes = if explicit && spec.placement == Placement::Hbw {
        peak_live_chunks as u64 * spec.chunk_bytes
    } else {
        0
    };
    let witness_chunks = || -> Vec<String> {
        let mut lines: Vec<String> = antichain
            .iter()
            .take(8)
            .map(|&c| format!("chunk {c} live (slot {})", c % cfg.ring_slots))
            .collect();
        if antichain.len() > 8 {
            lines.push(format!("... and {} more", antichain.len() - 8));
        }
        lines
    };
    if explicit && peak_live_chunks > cfg.ring_slots {
        findings.push(GraphFinding {
            check: GraphCheck::RingWidth,
            message: format!(
                "{peak_live_chunks} chunks can be in flight concurrently but the ring has {} slots",
                cfg.ring_slots
            ),
            trace: witness_chunks(),
        });
    }
    if let Some(budget) = cfg.hbw_budget {
        if peak_hbw_bytes > budget {
            let mut trace = vec![format!(
                "peak = {peak_live_chunks} live chunks x {} bytes/chunk = {peak_hbw_bytes} bytes",
                spec.chunk_bytes
            )];
            trace.extend(witness_chunks());
            findings.push(GraphFinding {
                check: GraphCheck::Capacity,
                message: format!(
                    "peak HBW occupancy {peak_hbw_bytes} bytes exceeds the MCDRAM budget of {budget} bytes"
                ),
                trace,
            });
        }
    }

    // G005 — dead tokens: a completion nobody consumes. Copy-outs retire
    // their chunk (their completion *is* the pipeline's output) and the
    // final node ends the schedule; anything else without a dependent is
    // issued work whose finish the graph never observes.
    let dependents = graph.dependents();
    for i in 0..n {
        if invalid[i] || !dependents[i].is_empty() || i == n - 1 {
            continue;
        }
        if matches!(graph.action(i), Some(a) if a.stage == Stage::CopyOut) {
            continue;
        }
        findings.push(GraphFinding {
            check: GraphCheck::DeadToken,
            message: format!("completion of {} is never consumed", graph.describe(i)),
            trace: vec!["no later node depends on it; its chunk can never be drained".into()],
        });
    }

    findings.sort_by_key(|f| f.check.code());
    GraphReport {
        nodes: n,
        edges: graph.edge_count(),
        peak_live_chunks,
        peak_hbw_bytes,
        findings,
    }
}

/// Record the graph `drive()` emits for `spec` and [`analyze`] it under
/// the shipped (correct) discipline. `hbw_budget` is the addressable
/// MCDRAM for the G003 capacity bound (`None` skips it).
///
/// Returns the report — check [`GraphReport::is_safe`] for the verdict;
/// `Err` only when the spec cannot be driven at all.
pub fn verify_spec(
    spec: &PipelineSpec,
    hbw_budget: Option<u64>,
) -> Result<GraphReport, DriveError> {
    let graph = record_graph(spec)?;
    let cfg = AnalysisConfig {
        hbw_budget,
        ..AnalysisConfig::default()
    };
    Ok(analyze(&graph, spec, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n_chunks: u64, lockstep: bool, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: n_chunks * 64,
            chunk_bytes: 64,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep,
            data_addr: 0,
        }
    }

    #[test]
    fn emitted_graphs_verify_clean() {
        for lockstep in [true, false] {
            for placement in [Placement::Hbw, Placement::Ddr] {
                let s = spec(7, lockstep, placement);
                let r = verify_spec(&s, Some(1 << 30)).unwrap();
                assert!(r.is_safe(), "{lockstep}/{placement:?}: {r}");
                assert!(r.findings.is_empty(), "{r}");
                assert_eq!(r.peak_live_chunks, 3, "{r}");
            }
        }
        let s = spec(4, true, Placement::Implicit);
        let r = verify_spec(&s, None).unwrap();
        assert!(r.findings.is_empty(), "{r}");
        assert_eq!(r.peak_live_chunks, 1);
        assert_eq!(r.peak_hbw_bytes, 0);
    }

    #[test]
    fn single_chunk_peaks_at_one() {
        let r = verify_spec(&spec(1, false, Placement::Hbw), None).unwrap();
        assert!(r.findings.is_empty(), "{r}");
        assert_eq!(r.peak_live_chunks, 1);
        assert_eq!(r.peak_hbw_bytes, 64);
    }

    #[test]
    fn dropped_recycle_edges_race_and_overflow_the_ring() {
        let g = record_graph(&spec(4, false, Placement::Hbw)).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                drop_recycle: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &spec(4, false, Placement::Hbw), &cfg);
        let codes = r.codes();
        assert!(codes.contains(&"G001"), "{r}");
        assert!(codes.contains(&"G004"), "{r}");
        assert!(r.findings.iter().all(|f| !f.trace.is_empty()), "{r}");
    }

    #[test]
    fn notify_one_starves_lockstep_waiters() {
        let s = spec(4, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                notify_one: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert_eq!(r.codes(), vec!["G002"], "{r}");
        // Dataflow chains have single dependents everywhere: immune.
        let s = spec(4, false, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let r = analyze(&g, &s, &cfg);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn no_recheck_races_the_lockstep_ring() {
        let s = spec(4, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                no_recheck: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
    }

    #[test]
    fn poison_skip_leaks_the_poisoned_slot() {
        let s = spec(4, false, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                poison_skip: true,
                ..Discipline::CORRECT
            },
            kernel_panic: Some(1),
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
        // The correct discipline cancels the dependents: no leak.
        let cfg = AnalysisConfig {
            kernel_panic: Some(1),
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn hand_built_cycle_is_a_deadlock() {
        let mut g = DepGraph::new();
        let a = ChunkAction {
            stage: Stage::Compute,
            chunk: 0,
            slot: 0,
        };
        g.push(GraphNode::Action(a), vec![1]);
        g.push(GraphNode::Barrier, vec![0]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert_eq!(r.codes(), vec!["G002"], "{r}");
        assert!(r.findings[0].trace.len() >= 2, "{r}");
    }

    #[test]
    fn dangling_and_self_deps_are_unreachable() {
        let mut g = DepGraph::new();
        let a = ChunkAction {
            stage: Stage::Compute,
            chunk: 0,
            slot: 0,
        };
        g.push(GraphNode::Action(a), vec![7]);
        g.push(GraphNode::Barrier, vec![1]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert!(r.codes().contains(&"G006"), "{r}");
    }

    #[test]
    fn dead_token_is_advisory() {
        let mut g = DepGraph::new();
        let act = |stage, chunk: usize| ChunkAction {
            stage,
            chunk,
            slot: chunk % RING_SLOTS,
        };
        // Compute of chunk 0 is issued but nobody consumes its completion
        // and no copy-out drains it.
        g.push(GraphNode::Action(act(Stage::CopyIn, 0)), vec![]);
        g.push(GraphNode::Action(act(Stage::Compute, 0)), vec![0]);
        g.push(GraphNode::Barrier, vec![0]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert!(r.codes().contains(&"G005"), "{r}");
        assert!(r.is_safe(), "advisory findings keep the schedule safe: {r}");
    }

    #[test]
    fn capacity_bound_fires_on_a_tiny_budget() {
        let s = spec(7, false, Placement::Hbw);
        let r = verify_spec(&s, Some(128)).unwrap();
        // Peak is 3 chunks x 64 bytes = 192 > 128.
        assert_eq!(r.codes(), vec!["G003"], "{r}");
        assert_eq!(r.peak_hbw_bytes, 192);
    }

    #[test]
    fn slot_model_enforces_the_phase_machine() {
        let mut ring = SlotModel::new(RING_SLOTS);
        let act = |stage, chunk: usize| ChunkAction {
            stage,
            chunk,
            slot: chunk % RING_SLOTS,
        };
        ring.load(act(Stage::CopyIn, 0), 11).unwrap();
        // Compute on the wrong chunk clashes.
        assert!(matches!(
            ring.compute(act(Stage::Compute, 3), |v| v),
            Err(SlotError::Clash { .. })
        ));
        ring.compute(act(Stage::Compute, 0), |v| v + 1).unwrap();
        assert_eq!(ring.drain(act(Stage::CopyOut, 0)).unwrap(), 12);
        // Poison refuses everything afterwards.
        ring.load(act(Stage::CopyIn, 0), 5).unwrap();
        ring.poison(act(Stage::Compute, 0)).unwrap();
        assert!(matches!(
            ring.load(act(Stage::CopyIn, 3), 9),
            Err(SlotError::Poisoned { .. })
        ));
    }

    #[test]
    fn recorder_matches_drive_shape() {
        let s = spec(5, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        // 3 stages x 5 chunks + 7 barriers.
        assert_eq!(g.len(), 22);
        assert!(g.find_action(Stage::CopyOut, 4).is_some());
        assert!(g.find_action(Stage::CopyOut, 5).is_none());
        assert!(g.describe(g.len() - 1).contains("barrier"));
    }
}
