//! The shared dependency-graph model and the static schedule verifier.
//!
//! [`crate::drive`] emits one dependency DAG per spec: chunk-stage actions
//! and barriers, ordered by tokens. Two consumers share the model defined
//! here (DESIGN.md S22):
//!
//! * the **fuzzer** ([`crate::fuzz`]) records the DAG through
//!   [`GraphRecorder`]-equivalent bookkeeping and *samples* adversarial
//!   linearizations of it;
//! * the **static analyzer** ([`analyze`]) proves properties over *every*
//!   linearization without enumerating them, via reachability on the
//!   transitive closure:
//!
//!   | check | code | property |
//!   |-------|------|----------|
//!   | [`GraphCheck::Race`]        | G001 | same-slot actions are dependency-ordered (incl. poison-drain) |
//!   | [`GraphCheck::Deadlock`]    | G002 | no cycles, no starved waiters |
//!   | [`GraphCheck::Capacity`]    | G003 | peak HBW-resident bytes fit the MCDRAM budget |
//!   | [`GraphCheck::RingWidth`]   | G004 | no antichain of live chunks exceeds the buffer ring |
//!   | [`GraphCheck::DeadToken`]   | G005 | every completion is consumed (advisory) |
//!   | [`GraphCheck::Unreachable`] | G006 | no dangling/self dependencies, no unrunnable ops |
//!
//! The capacity and ring-width bounds come from a weighted-antichain
//! (Dilworth / minimum chain cover) analysis of the chunk liveness order:
//! chunk `c` precedes chunk `d` when `c`'s copy-out happens-before `d`'s
//! copy-in, so the maximum antichain is exactly the largest set of chunks
//! the dependency edges allow to be resident at once. The bound is tight
//! for the graphs `drive()` emits and conservative in general (it ignores
//! slot identities, so it never under-reports occupancy).
//!
//! [`Discipline`] re-expresses the fuzzer's buggy [`Construction`]s
//! (dropped recycle edges, notify-one wakeups, missing predicate rechecks,
//! poison without cancellation) as *effective-edge weakenings*, which is
//! how the analyzer flags each of the four seeded bugs statically — no
//! fuzz seeds involved.
//!
//! [`Construction`]: crate::fuzz::Construction

use std::collections::BTreeMap;
use std::fmt;

use crate::backend::{Backend, ChunkAction, Stage};
use crate::drive::{drive, RING_SLOTS};
use crate::error::DriveError;
use crate::placement::{Capabilities, Placement};
use crate::spec::{PipelineSpec, Workload};

// ---------------------------------------------------------------------------
// The recorded graph
// ---------------------------------------------------------------------------

/// One node of a recorded schedule graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphNode {
    /// A chunk-stage action ([`Backend::issue`]).
    Action(ChunkAction),
    /// A lockstep step barrier ([`Backend::step_barrier`]).
    Barrier,
}

impl GraphNode {
    /// The action, if this node is one.
    pub fn action(&self) -> Option<ChunkAction> {
        match self {
            GraphNode::Action(a) => Some(*a),
            GraphNode::Barrier => None,
        }
    }
}

/// The dependency DAG `drive()` emits: nodes in issue order, each with the
/// indices of the nodes whose completion it waits for.
///
/// The graphs `drive()` records are acyclic with every dependency pointing
/// at an earlier node; hand-built graphs may violate both, which is
/// exactly what [`analyze`] diagnoses (G002/G006).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    nodes: Vec<GraphNode>,
    deps: Vec<Vec<usize>>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Append a node with its dependency list; returns the node's index.
    pub fn push(&mut self, node: GraphNode, deps: Vec<usize>) -> usize {
        self.nodes.push(node);
        self.deps.push(deps);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// The node at `i`.
    pub fn node(&self, i: usize) -> &GraphNode {
        &self.nodes[i]
    }

    /// The dependency list of node `i`.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// The action at node `i`, if it is one.
    pub fn action(&self, i: usize) -> Option<ChunkAction> {
        self.nodes[i].action()
    }

    /// The node index of the action `(stage, chunk)`, if the schedule
    /// issues it.
    pub fn find_action(&self, stage: Stage, chunk: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, GraphNode::Action(a) if a.stage == stage && a.chunk == chunk))
    }

    /// Dependents (reverse edges) of every node, in node order. Edges to
    /// out-of-range or self targets are skipped.
    pub fn dependents(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut out = vec![Vec::new(); n];
        for (i, dl) in self.deps.iter().enumerate() {
            for &d in dl {
                if d < n && d != i {
                    out[d].push(i);
                }
            }
        }
        out
    }

    /// True when the edge `dep -> node` is a buffer-recycling edge: a
    /// writer waiting for the last consumer of its slot's previous
    /// occupant. For the map family that is a copy-in waiting on a
    /// copy-out; the stencil family adds copy-ins waiting on neighbour
    /// *computes* (the halo readers of the evicted chunk) and computes
    /// waiting on the copy-out that frees their output buffer. The
    /// [`Discipline::drop_recycle`] weakening erases exactly these.
    pub fn is_recycle_edge(&self, node: usize, dep: usize) -> bool {
        match (&self.nodes[node], &self.nodes[dep]) {
            (GraphNode::Action(a), GraphNode::Action(d)) => {
                (a.stage == Stage::CopyIn && d.stage == Stage::CopyOut)
                    || (a.stage == Stage::CopyIn && d.stage == Stage::Compute && d.chunk != a.chunk)
                    || (a.stage == Stage::Compute && d.stage == Stage::CopyOut)
            }
            _ => false,
        }
    }

    /// True when the edge `dep -> node` is an inter-chunk halo edge: a
    /// compute waiting on the copy-in of a *neighbouring* chunk whose
    /// boundary bytes it reads. Only stencil-family plans emit these; the
    /// [`Discipline::drop_halo`] weakening erases exactly these.
    pub fn is_halo_edge(&self, node: usize, dep: usize) -> bool {
        matches!(
            (&self.nodes[node], &self.nodes[dep]),
            (GraphNode::Action(a), GraphNode::Action(d))
                if a.stage == Stage::Compute && d.stage == Stage::CopyIn && d.chunk != a.chunk
        )
    }

    /// Human-readable one-line description of node `i`, for traces.
    pub fn describe(&self, i: usize) -> String {
        match self.nodes.get(i) {
            Some(GraphNode::Action(a)) => format!(
                "{:?} of chunk {} (slot {}, node {i})",
                a.stage, a.chunk, a.slot
            ),
            Some(GraphNode::Barrier) => format!("step barrier (node {i})"),
            None => format!("node {i} (out of range)"),
        }
    }
}

/// A [`Backend`] that records the dependency graph and performs no work.
///
/// Tokens are node indices, so the recorded [`DepGraph`] is exactly the
/// DAG any other backend would receive.
#[derive(Debug, Default)]
pub struct GraphRecorder {
    graph: DepGraph,
}

impl GraphRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        GraphRecorder::default()
    }

    /// The recorded graph.
    pub fn into_graph(self) -> DepGraph {
        self.graph
    }
}

impl Backend for GraphRecorder {
    type Token = usize;

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, deps: &[usize]) -> usize {
        self.graph.push(GraphNode::Action(action), deps.to_vec())
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, after: &[usize]) -> usize {
        self.graph.push(GraphNode::Barrier, after.to_vec())
    }

    fn finish(&mut self, _spec: &PipelineSpec) -> Result<(), String> {
        Ok(())
    }
}

/// Record the dependency graph `drive()` emits for `spec` without
/// executing anything. Fails only when the spec itself cannot be driven
/// ([`DriveError::Spec`]).
pub fn record_graph(spec: &PipelineSpec) -> Result<DepGraph, DriveError> {
    let mut recorder = GraphRecorder::new();
    drive(&mut recorder, spec)?;
    Ok(recorder.into_graph())
}

// ---------------------------------------------------------------------------
// The slot phase model (shared with the fuzzer's executor)
// ---------------------------------------------------------------------------

/// Phase state of one modeled ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No chunk resident.
    Free,
    /// Chunk loaded with its input value, not yet computed.
    Loaded(usize, u64),
    /// Chunk computed, ready to drain.
    Computed(usize, u64),
    /// A kernel panicked mid-compute; nothing may touch the slot.
    Poisoned(usize),
}

impl SlotState {
    /// Human-readable state name, for violation messages.
    pub fn describe(self) -> String {
        match self {
            SlotState::Free => "Free".into(),
            SlotState::Loaded(c, _) => format!("Loaded(chunk {c})"),
            SlotState::Computed(c, _) => format!("Computed(chunk {c})"),
            SlotState::Poisoned(c) => format!("Poisoned(chunk {c})"),
        }
    }
}

/// A phase-machine transition the ring refused.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotError {
    /// The action hit its slot in the wrong phase (overwrite of a live
    /// slot, compute on an unloaded slot, copy-out of stale data).
    Clash {
        /// The offending action.
        action: ChunkAction,
        /// The slot state at the time, rendered.
        state: String,
    },
    /// The action touched a slot poisoned by a kernel panic.
    Poisoned {
        /// The offending action.
        action: ChunkAction,
    },
}

/// The chunk-granular buffer-ring phase machine: copy-in requires a free
/// slot, compute a loaded one, copy-out a computed one; a poisoned slot
/// refuses everything. One value per chunk tracks data integrity.
///
/// This is the single ring model both the fuzzer's adversarial executor
/// and the analyzer's poison reasoning are defined against.
#[derive(Debug, Clone)]
pub struct SlotModel {
    slots: Vec<SlotState>,
}

impl SlotModel {
    /// A ring of `slots` free slots.
    pub fn new(slots: usize) -> Self {
        SlotModel {
            slots: vec![SlotState::Free; slots],
        }
    }

    /// The state of slot `s`.
    pub fn state(&self, s: usize) -> SlotState {
        self.slots[s]
    }

    fn entry(&mut self, a: ChunkAction) -> Result<&mut SlotState, SlotError> {
        let slot = &mut self.slots[a.slot];
        if matches!(*slot, SlotState::Poisoned(_)) {
            return Err(SlotError::Poisoned { action: a });
        }
        Ok(slot)
    }

    /// Copy-in: load `value` into the (free) slot of `a`.
    pub fn load(&mut self, a: ChunkAction, value: u64) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Free => {
                *slot = SlotState::Loaded(a.chunk, value);
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// Compute: transform the loaded value of `a`'s chunk with `kernel`.
    pub fn compute(
        &mut self,
        a: ChunkAction,
        kernel: impl FnOnce(u64) -> u64,
    ) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Loaded(c, v) if c == a.chunk => {
                *slot = SlotState::Computed(c, kernel(v));
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// A kernel panic where the compute of `a` would run: poison the slot.
    pub fn poison(&mut self, a: ChunkAction) -> Result<(), SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Loaded(c, _) if c == a.chunk => {
                *slot = SlotState::Poisoned(c);
                Ok(())
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }

    /// Copy-out: drain the computed value of `a`'s chunk, freeing the slot.
    pub fn drain(&mut self, a: ChunkAction) -> Result<u64, SlotError> {
        let slot = self.entry(a)?;
        match *slot {
            SlotState::Computed(c, v) if c == a.chunk => {
                *slot = SlotState::Free;
                Ok(v)
            }
            state => Err(SlotError::Clash {
                action: a,
                state: state.describe(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Disciplines and analysis configuration
// ---------------------------------------------------------------------------

/// How an executor honours the recorded dependency edges. The default
/// ([`Discipline::CORRECT`]) honours all of them; each flag is the
/// effective-edge weakening of one of the fuzzer's buggy
/// [`Construction`](crate::fuzz::Construction)s, so the analyzer can prove
/// the same bug classes statically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Discipline {
    /// Ignore buffer-recycling edges (copy-out → copy-in for maps, plus
    /// the stencil's halo-reader → copy-in and copy-out → compute forms).
    pub drop_recycle: bool,
    /// Ignore inter-chunk halo edges (neighbour copy-in → compute): the
    /// stencil kernel reads boundary bytes that may not have landed.
    pub drop_halo: bool,
    /// A completion wakes only the statically-first dependent; an edge to
    /// any later dependent delivers no notification (the waiter starves).
    pub notify_one: bool,
    /// A node becomes runnable on its *first* dependency's completion; an
    /// edge `d -> i` is only guaranteed when `d` happens-before every
    /// other dependency of `i` (so no earlier notifier can exist).
    pub no_recheck: bool,
    /// After a kernel panic, dependents are scheduled as if the compute
    /// completed normally (no cancellation).
    pub poison_skip: bool,
}

impl Discipline {
    /// Honour every edge; poison cancels dependents.
    pub const CORRECT: Discipline = Discipline {
        drop_recycle: false,
        drop_halo: false,
        notify_one: false,
        no_recheck: false,
        poison_skip: false,
    };
}

/// What [`analyze`] checks a graph against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Buffer-ring depth the slot assignment rotates over.
    pub ring_slots: usize,
    /// Addressable MCDRAM bytes for HBW-placed buffers; `None` skips the
    /// G003 capacity check.
    pub hbw_budget: Option<u64>,
    /// The executor discipline to analyse under.
    pub discipline: Discipline,
    /// Model a kernel panic while computing this chunk (the static form
    /// of the fuzzer's `kernel_panic` fault): prove that nothing outside
    /// the guaranteed-cancelled dependents touches the poisoned slot.
    pub kernel_panic: Option<usize>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            ring_slots: RING_SLOTS,
            hbw_budget: None,
            discipline: Discipline::CORRECT,
            kernel_panic: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Findings and report
// ---------------------------------------------------------------------------

/// The property a [`GraphFinding`] violates. Codes G001–G006 are stable
/// and live alongside `mlm-verify`'s V-series lint ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCheck {
    /// G001 — two actions touch the same ring slot with no dependency
    /// path ordering them (happens-before race), or uncancelled work
    /// touches a poisoned slot.
    Race,
    /// G002 — a dependency cycle, or a waiter whose notification can
    /// never be delivered (starvation): some work can never run.
    Deadlock,
    /// G003 — the peak antichain of live HBW chunks exceeds the MCDRAM
    /// budget.
    Capacity,
    /// G004 — an antichain of in-flight chunks exceeds the buffer ring.
    RingWidth,
    /// G005 — a completion no later node consumes (advisory).
    DeadToken,
    /// G006 — a dangling or self dependency; the op (and everything
    /// downstream of it) can never become runnable.
    Unreachable,
}

impl GraphCheck {
    /// Every check the analyzer runs, in code order (for catalogs).
    pub const ALL: [GraphCheck; 6] = [
        GraphCheck::Race,
        GraphCheck::Deadlock,
        GraphCheck::Capacity,
        GraphCheck::RingWidth,
        GraphCheck::DeadToken,
        GraphCheck::Unreachable,
    ];

    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            GraphCheck::Race => "G001",
            GraphCheck::Deadlock => "G002",
            GraphCheck::Capacity => "G003",
            GraphCheck::RingWidth => "G004",
            GraphCheck::DeadToken => "G005",
            GraphCheck::Unreachable => "G006",
        }
    }

    /// The check's kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            GraphCheck::Race => "graph-race",
            GraphCheck::Deadlock => "graph-deadlock",
            GraphCheck::Capacity => "graph-mcdram-occupancy",
            GraphCheck::RingWidth => "graph-ring-width",
            GraphCheck::DeadToken => "graph-dead-token",
            GraphCheck::Unreachable => "graph-unreachable",
        }
    }

    /// True when a finding of this check makes the schedule unsafe to
    /// run. [`GraphCheck::DeadToken`] is advisory (wasted work, not a
    /// safety violation); everything else is fatal.
    pub fn is_fatal(self) -> bool {
        !matches!(self, GraphCheck::DeadToken)
    }
}

impl fmt::Display for GraphCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One property violation, with a counterexample trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphFinding {
    /// Which property broke.
    pub check: GraphCheck,
    /// One-line description.
    pub message: String,
    /// Counterexample trace: the nodes/chunks that witness the violation,
    /// one human-readable line each.
    pub trace: Vec<String>,
}

/// Everything [`analyze`] proved (or refuted) about one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Nodes analysed.
    pub nodes: usize,
    /// Dependency edges analysed.
    pub edges: usize,
    /// Size of the maximum antichain of concurrently-live chunks — the
    /// worst-case number of resident buffers any legal linearization can
    /// reach.
    pub peak_live_chunks: usize,
    /// `peak_live_chunks × chunk_bytes` for HBW placement, `0` otherwise.
    pub peak_hbw_bytes: u64,
    /// Property violations found; empty means every check passed.
    pub findings: Vec<GraphFinding>,
}

impl GraphReport {
    /// True when no fatal finding was reported (advisory G005 findings
    /// do not make a schedule unsafe).
    pub fn is_safe(&self) -> bool {
        !self.findings.iter().any(|f| f.check.is_fatal())
    }

    /// The distinct check codes that fired, in code order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.findings.iter().map(|f| f.check.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule graph: {} nodes, {} edges, peak {} live chunks ({} HBW bytes)",
            self.nodes, self.edges, self.peak_live_chunks, self.peak_hbw_bytes
        )?;
        for finding in &self.findings {
            write!(f, "\n[{}] {}", finding.check.code(), finding.message)?;
            for line in &finding.trace {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bitset transitive closure
// ---------------------------------------------------------------------------

/// Fixed-width bitset over node indices.
#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// Ancestor sets (`anc[i]` = nodes that happen-before `i`) over the edge
/// lists `deps`, processed in `topo` order.
fn closure(n: usize, deps: &[Vec<usize>], topo: &[usize]) -> Vec<BitSet> {
    let mut anc = vec![BitSet::new(n); n];
    for &i in topo {
        // Move the set out to appease the borrow checker, then put it back.
        let mut mine = std::mem::replace(&mut anc[i], BitSet::new(0));
        for &d in &deps[i] {
            mine.set(d);
            mine.union_with(&anc[d]);
        }
        anc[i] = mine;
    }
    anc
}

/// Kahn topological order over `deps`; `None` when a cycle exists.
fn topo_order(n: usize, deps: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut dependents = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (i, dl) in deps.iter().enumerate() {
        for &d in dl {
            dependents[d].push(i);
            remaining[i] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            remaining[d] -= 1;
            if remaining[d] == 0 {
                queue.push(d);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A directed cycle over `deps`, as a node sequence (first == last), for
/// the G002 counterexample trace. Only called when one exists.
fn find_cycle(n: usize, deps: &[Vec<usize>]) -> Vec<usize> {
    // Iterative DFS with white/gray/black coloring.
    let mut color = vec![0u8; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < deps[node].len() {
                let d = deps[node][*next];
                *next += 1;
                match color[d] {
                    0 => {
                        color[d] = 1;
                        parent[d] = Some(node);
                        stack.push((d, 0));
                    }
                    1 => {
                        // Back edge node -> d: walk parents from node to d.
                        let mut cycle = vec![d];
                        let mut cur = node;
                        while cur != d {
                            cycle.push(cur);
                            cur = parent[cur].expect("on the gray path");
                        }
                        cycle.push(d);
                        cycle.reverse();
                        return cycle;
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    unreachable!("find_cycle called on an acyclic graph")
}

// ---------------------------------------------------------------------------
// Antichain analysis (Dilworth via bipartite matching + König witness)
// ---------------------------------------------------------------------------

fn kuhn_augment(
    u: usize,
    adj: &[Vec<usize>],
    seen: &mut [bool],
    match_l: &mut [Option<usize>],
    match_r: &mut [Option<usize>],
) -> bool {
    for &v in &adj[u] {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        let free = match match_r[v] {
            None => true,
            Some(u2) => kuhn_augment(u2, adj, seen, match_l, match_r),
        };
        if free {
            match_r[v] = Some(u);
            match_l[u] = Some(v);
            return true;
        }
    }
    false
}

/// Maximum antichain of the strict partial order `adj` (edges `c -> d`
/// meaning `c` precedes `d`) over `n` elements, by Dilworth's theorem:
/// max antichain = n − max bipartite matching of the precedence relation,
/// with the witness antichain extracted from the König vertex cover.
fn max_antichain(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut match_l: Vec<Option<usize>> = vec![None; n];
    let mut match_r: Vec<Option<usize>> = vec![None; n];
    let mut matched = 0usize;
    for u in 0..n {
        let mut seen = vec![false; n];
        if kuhn_augment(u, adj, &mut seen, &mut match_l, &mut match_r) {
            matched += 1;
        }
    }
    // König: Z = unmatched left vertices plus everything reachable by
    // alternating (non-matching left→right, matching right→left) paths.
    // The antichain is {c : c_L ∈ Z and c_R ∉ Z} — both copies of c
    // avoid the minimum vertex cover.
    let mut vis_l = vec![false; n];
    let mut vis_r = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&u| match_l[u].is_none()).collect();
    for &u in &queue {
        vis_l[u] = true;
    }
    while let Some(u) = queue.pop() {
        for &v in &adj[u] {
            if match_l[u] == Some(v) || vis_r[v] {
                continue;
            }
            vis_r[v] = true;
            if let Some(u2) = match_r[v] {
                if !vis_l[u2] {
                    vis_l[u2] = true;
                    queue.push(u2);
                }
            }
        }
    }
    let antichain: Vec<usize> = (0..n).filter(|&c| vis_l[c] && !vis_r[c]).collect();
    debug_assert_eq!(antichain.len(), n - matched, "Dilworth/König mismatch");
    antichain
}

// ---------------------------------------------------------------------------
// Buffer footprints (the workload-generic race model)
// ---------------------------------------------------------------------------

/// One modeled staging buffer an action can touch. The race check (G001)
/// is defined over footprints on these: two actions conflict when they
/// touch the same buffer and at least one writes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BufferKey {
    /// The single staging buffer of a map-family ring slot (every stage
    /// of a chunk reads and writes it in place).
    Main(usize),
    /// The input buffer of a stencil ring slot: written by copy-in, read
    /// by the owning compute *and* both neighbour computes (halo).
    In(usize),
    /// The output buffer of a stencil ring slot: written by the compute,
    /// read by copy-out.
    Out(usize),
}

impl BufferKey {
    /// Buffer name as used in G001 messages.
    pub fn describe(self) -> String {
        match self {
            BufferKey::Main(s) => format!("ring slot {s}"),
            BufferKey::In(s) => format!("in-buffer slot {s}"),
            BufferKey::Out(s) => format!("out-buffer slot {s}"),
        }
    }
}

/// The buffers `a` touches under `spec`'s workload, each with a
/// `write` flag.
///
/// The map family models every stage as a *write* of its slot's single
/// buffer — all same-slot action pairs conflict, which is exactly the
/// phase-machine discipline [`SlotModel`] enforces dynamically. The
/// stencil family splits each slot into an in- and an out-buffer and
/// lets computes read the neighbouring in-buffers, so e.g. two computes
/// reading the same in-buffer do *not* conflict but a copy-in
/// overwriting it while a neighbour compute still reads it does.
pub fn action_footprint(spec: &PipelineSpec, a: ChunkAction) -> Vec<(BufferKey, bool)> {
    match spec.workload {
        Workload::Map => vec![(BufferKey::Main(a.slot), true)],
        Workload::Stencil { .. } => {
            let ring = spec.ring_slots();
            let n = spec.n_chunks();
            match a.stage {
                Stage::CopyIn => vec![(BufferKey::In(a.slot), true)],
                Stage::Compute => {
                    let mut fp = Vec::new();
                    if a.chunk > 0 {
                        fp.push((BufferKey::In((a.chunk - 1) % ring), false));
                    }
                    fp.push((BufferKey::In(a.slot), false));
                    if a.chunk + 1 < n {
                        fp.push((BufferKey::In((a.chunk + 1) % ring), false));
                    }
                    fp.push((BufferKey::Out(a.slot), true));
                    fp
                }
                Stage::CopyOut => vec![(BufferKey::Out(a.slot), false)],
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Prove (or refute) race-, deadlock-, and capacity-safety of `graph` over
/// every linearization, under the configured executor discipline.
///
/// The proofs are exhaustive for the schedule level the graph models: a
/// clean report means *no* interleaving a dependency-honouring executor
/// can produce violates the checked property — the static counterpart of
/// one fuzz seed per linearization.
pub fn analyze(graph: &DepGraph, spec: &PipelineSpec, cfg: &AnalysisConfig) -> GraphReport {
    let n = graph.len();
    let mut findings = Vec::new();

    // G006 — structural validity: dangling and self dependencies, plus
    // everything downstream of one (it can never become runnable).
    let mut invalid = vec![false; n];
    for (i, inv) in invalid.iter_mut().enumerate() {
        for &d in graph.deps(i) {
            if d >= n || d == i {
                *inv = true;
                findings.push(GraphFinding {
                    check: GraphCheck::Unreachable,
                    message: if d == i {
                        format!("{} depends on itself", graph.describe(i))
                    } else {
                        format!(
                            "{} depends on nonexistent node {d} (graph has {n} nodes)",
                            graph.describe(i)
                        )
                    },
                    trace: vec![format!("{} can never become runnable", graph.describe(i))],
                });
            }
        }
    }

    // Work on the valid edge set from here on.
    let valid_deps: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            graph
                .deps(i)
                .iter()
                .copied()
                .filter(|&d| d < n && d != i)
                .collect()
        })
        .collect();

    // G002 — cycle detection. A cyclic graph has no linearizations at
    // all; report the cycle and stop (closure analyses assume a DAG).
    let Some(topo) = topo_order(n, &valid_deps) else {
        let cycle = find_cycle(n, &valid_deps);
        let trace: Vec<String> = cycle.iter().map(|&i| graph.describe(i)).collect();
        findings.push(GraphFinding {
            check: GraphCheck::Deadlock,
            message: format!(
                "dependency cycle of {} nodes: no execution order exists",
                cycle.len() - 1
            ),
            trace,
        });
        return GraphReport {
            nodes: n,
            edges: graph.edge_count(),
            peak_live_chunks: 0,
            peak_hbw_bytes: 0,
            findings,
        };
    };

    let disc = cfg.discipline;

    // Effective edges, step 1: drop_recycle erases the recycling edges
    // and drop_halo the inter-chunk halo edges.
    let kept: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            valid_deps[i]
                .iter()
                .copied()
                .filter(|&d| !(disc.drop_recycle && graph.is_recycle_edge(i, d)))
                .filter(|&d| !(disc.drop_halo && graph.is_halo_edge(i, d)))
                .collect()
        })
        .collect();
    let anc_kept = closure(n, &kept, &topo);

    // Effective edges, step 2: no_recheck keeps an edge `d -> i` only when
    // the executor's run-on-first-notification shortcut cannot fire before
    // `d` completes — i.e. `d` happens-before every other dependency of
    // `i`, so whichever notification arrives first, `d` is already done.
    let eff: Vec<Vec<usize>> = if disc.no_recheck {
        (0..n)
            .map(|i| {
                let dl = &kept[i];
                dl.iter()
                    .copied()
                    .filter(|&d| dl.iter().all(|&o| o == d || anc_kept[o].get(d)))
                    .collect()
            })
            .collect()
    } else {
        kept.clone()
    };
    let anc = if disc.no_recheck {
        closure(n, &eff, &topo)
    } else {
        anc_kept
    };
    let ordered = |a: usize, b: usize| anc[b].get(a) || anc[a].get(b);

    // G002 — notify-one starvation: a waiter that is not the statically
    // first dependent of one of its dependencies never hears that
    // completion; anything downstream of a starved node starves too.
    if disc.notify_one {
        let dependents = {
            let mut out = vec![Vec::new(); n];
            for (i, dl) in kept.iter().enumerate() {
                for &d in dl {
                    out[d].push(i);
                }
            }
            out
        };
        let mut starved_by: Vec<Option<usize>> = vec![None; n];
        for (i, dl) in kept.iter().enumerate() {
            for &d in dl {
                if dependents[d].first() != Some(&i) {
                    starved_by[i] = Some(d);
                }
            }
        }
        let mut stuck = vec![false; n];
        for &i in &topo {
            stuck[i] = starved_by[i].is_some() || kept[i].iter().any(|&d| stuck[d]);
        }
        let stuck_count = stuck.iter().filter(|&&s| s).count();
        if stuck_count > 0 {
            let first = (0..n)
                .find(|&i| starved_by[i].is_some())
                .expect("stuck implies a directly starved node");
            let d = starved_by[first].expect("directly starved");
            let favoured = dependents[d][0];
            findings.push(GraphFinding {
                check: GraphCheck::Deadlock,
                message: format!(
                    "notify-one wakeups starve {stuck_count} nodes: lost notifications deadlock the schedule"
                ),
                trace: vec![
                    format!("{} waits on {}", graph.describe(first), graph.describe(d)),
                    format!(
                        "completion of {} wakes only {} (notify-one)",
                        graph.describe(d),
                        graph.describe(favoured)
                    ),
                    format!("{stuck_count} of {n} nodes can never run"),
                ],
            });
        }
    }

    let actions: Vec<(usize, ChunkAction)> = (0..n)
        .filter_map(|i| graph.action(i).map(|a| (i, a)))
        .collect();
    let explicit = spec.placement != Placement::Implicit;

    // G001 — happens-before races: any two actions whose buffer
    // footprints conflict (same buffer, at least one write) must be
    // connected by a dependency path, else some linearization runs them
    // concurrently. For the map family every action writes its slot's
    // single buffer, so this degenerates to "same-slot actions must be
    // ordered" — the slot phase machine's static counterpart; the stencil
    // family's split in/out buffers and halo reads refine the model.
    if explicit {
        let footprints: Vec<Vec<(BufferKey, bool)>> = actions
            .iter()
            .map(|&(_, a)| action_footprint(spec, a))
            .collect();
        let mut by_buffer: BTreeMap<BufferKey, Vec<(usize, usize)>> = BTreeMap::new();
        for (k, &(i, _)) in actions.iter().enumerate() {
            for (m, &(j, _)) in actions.iter().enumerate().skip(k + 1) {
                if ordered(i, j) {
                    continue;
                }
                for &(key_a, write_a) in &footprints[k] {
                    for &(key_b, write_b) in &footprints[m] {
                        if key_a == key_b && (write_a || write_b) {
                            let pairs = by_buffer.entry(key_a).or_default();
                            if pairs.last() != Some(&(i, j)) {
                                pairs.push((i, j));
                            }
                        }
                    }
                }
            }
        }
        for (key, pairs) in &by_buffer {
            let &(i, j) = pairs.first().expect("entry implies a pair");
            findings.push(GraphFinding {
                check: GraphCheck::Race,
                message: format!(
                    "{}: {} action pair(s) with no dependency path between them",
                    key.describe(),
                    pairs.len()
                ),
                trace: vec![
                    format!(
                        "{} and {} both touch {}",
                        graph.describe(i),
                        graph.describe(j),
                        key.describe()
                    ),
                    "no dependency path orders them under the analysed discipline".into(),
                ],
            });
        }
    }

    // G001 (poison) — with a modeled kernel panic, everything that is not
    // a guaranteed-cancelled dependent of the panicked compute and runs
    // concurrently with or after it must not touch the poisoned slot.
    if explicit {
        if let Some(k) = cfg.kernel_panic {
            if let Some(p) = graph.find_action(Stage::Compute, k) {
                let slot = k % cfg.ring_slots;
                for &(i, a) in &actions {
                    if i == p || a.slot != slot {
                        continue;
                    }
                    let cancelled = !disc.poison_skip && anc[i].get(p);
                    let before_panic = anc[p].get(i);
                    if !cancelled && !before_panic {
                        findings.push(GraphFinding {
                            check: GraphCheck::Race,
                            message: format!(
                                "poison leak: {} can touch the slot poisoned by the kernel panic on chunk {k}",
                                graph.describe(i)
                            ),
                            trace: vec![
                                format!(
                                    "kernel panic poisons slot {slot} at {}",
                                    graph.describe(p)
                                ),
                                format!(
                                    "{} is not a guaranteed-cancelled dependent and is not ordered before the panic",
                                    graph.describe(i)
                                ),
                            ],
                        });
                    }
                }
            }
        }
    }

    // G003/G004 — buffer liveness antichains. A buffer is live from the
    // action that fills it until the last action that reads it; buffer
    // `c` strictly precedes buffer `d` when `c`'s end happens-before
    // `d`'s start, so by Dilworth the maximum antichain of the precedence
    // order is exactly the worst-case number of simultaneously-live
    // buffers any linearization can reach.
    //
    // The map family has one buffer per chunk, spanning copy-in to
    // copy-out (the compute itself in implicit mode). The stencil family
    // has two: the in-buffer of chunk `c` spans its copy-in to the last
    // halo reader (compute of `c + 1`), the out-buffer its compute to its
    // copy-out — each ring of `ring_slots` buffers is bounded separately,
    // and the HBW peak sums both.
    let n_chunks = spec.n_chunks();
    let antichain_of = |spans: &[(Option<usize>, Option<usize>)]| -> Vec<usize> {
        let mut precedes: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        for (c, &(_, end_c)) in spans.iter().enumerate() {
            for (d, &(start_d, _)) in spans.iter().enumerate() {
                if let (Some(out_c), Some(in_d)) = (end_c, start_d) {
                    if c != d && anc[in_d].get(out_c) {
                        precedes[c].push(d);
                    }
                }
            }
        }
        max_antichain(spans.len(), &precedes)
    };
    let witness = |antichain: &[usize], what: &str| -> Vec<String> {
        let mut lines: Vec<String> = antichain
            .iter()
            .take(8)
            .map(|&c| format!("chunk {c}{what} live (slot {})", c % cfg.ring_slots))
            .collect();
        if antichain.len() > 8 {
            lines.push(format!("... and {} more", antichain.len() - 8));
        }
        lines
    };

    let stencil = explicit && matches!(spec.workload, Workload::Stencil { .. });
    let (peak_live_chunks, peak_hbw_buffers, ring_findings, budget_head, budget_witness) =
        if stencil {
            let in_spans: Vec<(Option<usize>, Option<usize>)> = (0..n_chunks)
                .map(|c| {
                    let last_reader = (c + 1).min(n_chunks - 1);
                    (
                        graph.find_action(Stage::CopyIn, c),
                        graph.find_action(Stage::Compute, last_reader),
                    )
                })
                .collect();
            let out_spans: Vec<(Option<usize>, Option<usize>)> = (0..n_chunks)
                .map(|c| {
                    (
                        graph.find_action(Stage::Compute, c),
                        graph.find_action(Stage::CopyOut, c),
                    )
                })
                .collect();
            let in_chain = antichain_of(&in_spans);
            let out_chain = antichain_of(&out_spans);
            let (peak_in, peak_out) = (in_chain.len(), out_chain.len());
            let mut ring_findings = Vec::new();
            for (peak, chain, what) in [
                (peak_in, &in_chain, " in-buffer"),
                (peak_out, &out_chain, " out-buffer"),
            ] {
                if peak > cfg.ring_slots {
                    ring_findings.push(GraphFinding {
                        check: GraphCheck::RingWidth,
                        message: format!(
                            "{peak} stencil{what}s can be in flight concurrently but the ring has {} slots",
                            cfg.ring_slots
                        ),
                        trace: witness(chain, what),
                    });
                }
            }
            let head = format!(
                "peak = ({peak_in} in-buffers + {peak_out} out-buffers) x {} bytes each",
                spec.chunk_bytes
            );
            let mut wit = witness(&in_chain, " in-buffer");
            wit.extend(witness(&out_chain, " out-buffer"));
            (
                peak_in.max(peak_out),
                (peak_in + peak_out) as u64,
                ring_findings,
                head,
                wit,
            )
        } else {
            let spans: Vec<(Option<usize>, Option<usize>)> = (0..n_chunks)
                .map(|c| {
                    if explicit {
                        (
                            graph.find_action(Stage::CopyIn, c),
                            graph.find_action(Stage::CopyOut, c),
                        )
                    } else {
                        let comp = graph.find_action(Stage::Compute, c);
                        (comp, comp)
                    }
                })
                .collect();
            let antichain = antichain_of(&spans);
            let peak = antichain.len();
            let mut ring_findings = Vec::new();
            if explicit && peak > cfg.ring_slots {
                ring_findings.push(GraphFinding {
                    check: GraphCheck::RingWidth,
                    message: format!(
                        "{peak} chunks can be in flight concurrently but the ring has {} slots",
                        cfg.ring_slots
                    ),
                    trace: witness(&antichain, ""),
                });
            }
            let head = format!(
                "peak = {peak} live chunks x {} bytes/chunk = {} bytes",
                spec.chunk_bytes,
                peak as u64 * spec.chunk_bytes
            );
            let wit = witness(&antichain, "");
            (peak, peak as u64, ring_findings, head, wit)
        };
    findings.extend(ring_findings);
    let peak_hbw_bytes = if explicit && spec.placement == Placement::Hbw {
        peak_hbw_buffers * spec.chunk_bytes
    } else {
        0
    };
    if let Some(budget) = cfg.hbw_budget {
        if peak_hbw_bytes > budget {
            let mut trace = vec![budget_head];
            trace.extend(budget_witness);
            findings.push(GraphFinding {
                check: GraphCheck::Capacity,
                message: format!(
                    "peak HBW occupancy {peak_hbw_bytes} bytes exceeds the MCDRAM budget of {budget} bytes"
                ),
                trace,
            });
        }
    }

    // G005 — dead tokens: a completion nobody consumes. Copy-outs retire
    // their chunk (their completion *is* the pipeline's output) and the
    // final node ends the schedule; anything else without a dependent is
    // issued work whose finish the graph never observes.
    let dependents = graph.dependents();
    for i in 0..n {
        if invalid[i] || !dependents[i].is_empty() || i == n - 1 {
            continue;
        }
        if matches!(graph.action(i), Some(a) if a.stage == Stage::CopyOut) {
            continue;
        }
        findings.push(GraphFinding {
            check: GraphCheck::DeadToken,
            message: format!("completion of {} is never consumed", graph.describe(i)),
            trace: vec!["no later node depends on it; its chunk can never be drained".into()],
        });
    }

    findings.sort_by_key(|f| f.check.code());
    GraphReport {
        nodes: n,
        edges: graph.edge_count(),
        peak_live_chunks,
        peak_hbw_bytes,
        findings,
    }
}

/// Record the graph `drive()` emits for `spec` and [`analyze`] it under
/// the shipped (correct) discipline. `hbw_budget` is the addressable
/// MCDRAM for the G003 capacity bound (`None` skips it).
///
/// Returns the report — check [`GraphReport::is_safe`] for the verdict;
/// `Err` only when the spec cannot be driven at all.
pub fn verify_spec(
    spec: &PipelineSpec,
    hbw_budget: Option<u64>,
) -> Result<GraphReport, DriveError> {
    let graph = record_graph(spec)?;
    let cfg = AnalysisConfig {
        ring_slots: spec.ring_slots(),
        hbw_budget,
        ..AnalysisConfig::default()
    };
    Ok(analyze(&graph, spec, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n_chunks: u64, lockstep: bool, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: n_chunks * 64,
            chunk_bytes: 64,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn emitted_graphs_verify_clean() {
        for lockstep in [true, false] {
            for placement in [Placement::Hbw, Placement::Ddr] {
                let s = spec(7, lockstep, placement);
                let r = verify_spec(&s, Some(1 << 30)).unwrap();
                assert!(r.is_safe(), "{lockstep}/{placement:?}: {r}");
                assert!(r.findings.is_empty(), "{r}");
                assert_eq!(r.peak_live_chunks, 3, "{r}");
            }
        }
        let s = spec(4, true, Placement::Implicit);
        let r = verify_spec(&s, None).unwrap();
        assert!(r.findings.is_empty(), "{r}");
        assert_eq!(r.peak_live_chunks, 1);
        assert_eq!(r.peak_hbw_bytes, 0);
    }

    #[test]
    fn single_chunk_peaks_at_one() {
        let r = verify_spec(&spec(1, false, Placement::Hbw), None).unwrap();
        assert!(r.findings.is_empty(), "{r}");
        assert_eq!(r.peak_live_chunks, 1);
        assert_eq!(r.peak_hbw_bytes, 64);
    }

    #[test]
    fn dropped_recycle_edges_race_and_overflow_the_ring() {
        let g = record_graph(&spec(4, false, Placement::Hbw)).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                drop_recycle: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &spec(4, false, Placement::Hbw), &cfg);
        let codes = r.codes();
        assert!(codes.contains(&"G001"), "{r}");
        assert!(codes.contains(&"G004"), "{r}");
        assert!(r.findings.iter().all(|f| !f.trace.is_empty()), "{r}");
    }

    #[test]
    fn notify_one_starves_lockstep_waiters() {
        let s = spec(4, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                notify_one: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert_eq!(r.codes(), vec!["G002"], "{r}");
        // Dataflow chains have single dependents everywhere: immune.
        let s = spec(4, false, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let r = analyze(&g, &s, &cfg);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn no_recheck_races_the_lockstep_ring() {
        let s = spec(4, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                no_recheck: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
    }

    #[test]
    fn poison_skip_leaks_the_poisoned_slot() {
        let s = spec(4, false, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            discipline: Discipline {
                poison_skip: true,
                ..Discipline::CORRECT
            },
            kernel_panic: Some(1),
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
        // The correct discipline cancels the dependents: no leak.
        let cfg = AnalysisConfig {
            kernel_panic: Some(1),
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn hand_built_cycle_is_a_deadlock() {
        let mut g = DepGraph::new();
        let a = ChunkAction {
            stage: Stage::Compute,
            chunk: 0,
            slot: 0,
        };
        g.push(GraphNode::Action(a), vec![1]);
        g.push(GraphNode::Barrier, vec![0]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert_eq!(r.codes(), vec!["G002"], "{r}");
        assert!(r.findings[0].trace.len() >= 2, "{r}");
    }

    #[test]
    fn dangling_and_self_deps_are_unreachable() {
        let mut g = DepGraph::new();
        let a = ChunkAction {
            stage: Stage::Compute,
            chunk: 0,
            slot: 0,
        };
        g.push(GraphNode::Action(a), vec![7]);
        g.push(GraphNode::Barrier, vec![1]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert!(r.codes().contains(&"G006"), "{r}");
    }

    #[test]
    fn dead_token_is_advisory() {
        let mut g = DepGraph::new();
        let act = |stage, chunk: usize| ChunkAction {
            stage,
            chunk,
            slot: chunk % RING_SLOTS,
        };
        // Compute of chunk 0 is issued but nobody consumes its completion
        // and no copy-out drains it.
        g.push(GraphNode::Action(act(Stage::CopyIn, 0)), vec![]);
        g.push(GraphNode::Action(act(Stage::Compute, 0)), vec![0]);
        g.push(GraphNode::Barrier, vec![0]);
        let r = analyze(
            &g,
            &spec(1, true, Placement::Hbw),
            &AnalysisConfig::default(),
        );
        assert!(r.codes().contains(&"G005"), "{r}");
        assert!(r.is_safe(), "advisory findings keep the schedule safe: {r}");
    }

    #[test]
    fn capacity_bound_fires_on_a_tiny_budget() {
        let s = spec(7, false, Placement::Hbw);
        let r = verify_spec(&s, Some(128)).unwrap();
        // Peak is 3 chunks x 64 bytes = 192 > 128.
        assert_eq!(r.codes(), vec!["G003"], "{r}");
        assert_eq!(r.peak_hbw_bytes, 192);
    }

    #[test]
    fn slot_model_enforces_the_phase_machine() {
        let mut ring = SlotModel::new(RING_SLOTS);
        let act = |stage, chunk: usize| ChunkAction {
            stage,
            chunk,
            slot: chunk % RING_SLOTS,
        };
        ring.load(act(Stage::CopyIn, 0), 11).unwrap();
        // Compute on the wrong chunk clashes.
        assert!(matches!(
            ring.compute(act(Stage::Compute, 3), |v| v),
            Err(SlotError::Clash { .. })
        ));
        ring.compute(act(Stage::Compute, 0), |v| v + 1).unwrap();
        assert_eq!(ring.drain(act(Stage::CopyOut, 0)).unwrap(), 12);
        // Poison refuses everything afterwards.
        ring.load(act(Stage::CopyIn, 0), 5).unwrap();
        ring.poison(act(Stage::Compute, 0)).unwrap();
        assert!(matches!(
            ring.load(act(Stage::CopyIn, 3), 9),
            Err(SlotError::Poisoned { .. })
        ));
    }

    fn stencil_spec(n_chunks: u64, lockstep: bool) -> PipelineSpec {
        PipelineSpec {
            workload: Workload::Stencil { halo_bytes: 16 },
            ..spec(n_chunks, lockstep, Placement::Hbw)
        }
    }

    #[test]
    fn stencil_graphs_verify_clean_on_the_deeper_ring() {
        for lockstep in [true, false] {
            for n in [1, 2, 5, 9] {
                let s = stencil_spec(n, lockstep);
                let r = verify_spec(&s, Some(1 << 30)).unwrap();
                assert!(r.is_safe(), "lockstep={lockstep} n={n}: {r}");
                assert!(r.findings.is_empty(), "{r}");
            }
        }
        // A long dataflow run saturates both 4-deep buffer rings: peak
        // HBW = (4 in + 4 out) x 64 bytes.
        let r = verify_spec(&stencil_spec(9, false), Some(1 << 30)).unwrap();
        assert_eq!(r.peak_live_chunks, 4, "{r}");
        assert_eq!(r.peak_hbw_bytes, 8 * 64, "{r}");
    }

    #[test]
    fn dropped_halo_edges_race_the_in_buffers() {
        let s = stencil_spec(6, false);
        let g = record_graph(&s).unwrap();
        let cfg = AnalysisConfig {
            ring_slots: s.ring_slots(),
            discipline: Discipline {
                drop_halo: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
        assert!(
            r.findings
                .iter()
                .any(|f| f.check == GraphCheck::Race && f.message.contains("in-buffer")),
            "{r}"
        );
        // Map graphs carry no halo edges, so the weakening is a no-op.
        let s = spec(6, false, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        let r = analyze(&g, &s, &cfg);
        assert!(r.is_safe(), "{r}");
    }

    #[test]
    fn stencil_recycle_edges_are_classified_and_droppable() {
        let s = stencil_spec(7, false);
        let g = record_graph(&s).unwrap();
        // Stage-in of chunk 4 recycles slot 0: its deps are computes.
        let in4 = g.find_action(Stage::CopyIn, 4).unwrap();
        assert!(!g.deps(in4).is_empty());
        for &d in g.deps(in4) {
            assert!(g.is_recycle_edge(in4, d), "{}", g.describe(d));
            assert!(!g.is_halo_edge(in4, d));
        }
        // Compute of chunk 2 has halo edges to both neighbour stage-ins.
        let comp2 = g.find_action(Stage::Compute, 2).unwrap();
        let halos = g
            .deps(comp2)
            .iter()
            .filter(|&&d| g.is_halo_edge(comp2, d))
            .count();
        assert_eq!(halos, 2);
        // Dropping recycle edges must blow both race and ring-width.
        let cfg = AnalysisConfig {
            ring_slots: s.ring_slots(),
            discipline: Discipline {
                drop_recycle: true,
                ..Discipline::CORRECT
            },
            ..AnalysisConfig::default()
        };
        let r = analyze(&g, &s, &cfg);
        assert!(r.codes().contains(&"G001"), "{r}");
        assert!(r.codes().contains(&"G004"), "{r}");
    }

    #[test]
    fn stencil_footprints_model_split_buffers_and_halo_reads() {
        let s = stencil_spec(6, false);
        let fp = |stage, chunk: usize| {
            action_footprint(
                &s,
                ChunkAction {
                    stage,
                    chunk,
                    slot: chunk % s.ring_slots(),
                },
            )
        };
        assert_eq!(fp(Stage::CopyIn, 2), vec![(BufferKey::In(2), true)]);
        assert_eq!(fp(Stage::CopyOut, 2), vec![(BufferKey::Out(2), false)]);
        // Interior compute: reads in-slots 1, 2, 3; writes out-slot 2.
        assert_eq!(
            fp(Stage::Compute, 2),
            vec![
                (BufferKey::In(1), false),
                (BufferKey::In(2), false),
                (BufferKey::In(3), false),
                (BufferKey::Out(2), true),
            ]
        );
        // Boundary computes drop the missing halo read.
        assert_eq!(
            fp(Stage::Compute, 0),
            vec![
                (BufferKey::In(0), false),
                (BufferKey::In(1), false),
                (BufferKey::Out(0), true),
            ]
        );
        // Map keeps the single-buffer model.
        let m = spec(6, false, Placement::Hbw);
        assert_eq!(
            action_footprint(
                &m,
                ChunkAction {
                    stage: Stage::Compute,
                    chunk: 4,
                    slot: 1,
                }
            ),
            vec![(BufferKey::Main(1), true)]
        );
    }

    #[test]
    fn recorder_matches_drive_shape() {
        let s = spec(5, true, Placement::Hbw);
        let g = record_graph(&s).unwrap();
        // 3 stages x 5 chunks + 7 barriers.
        assert_eq!(g.len(), 22);
        assert!(g.find_action(Stage::CopyOut, 4).is_some());
        assert!(g.find_action(Stage::CopyOut, 5).is_none());
        assert!(g.describe(g.len() - 1).contains("barrier"));
    }
}
