//! Event-trace production: wrap any backend and record the schedule it
//! was driven with.
//!
//! [`RecordingBackend`] composes — `RecordingBackend<SimBackend>` and
//! `RecordingBackend<HostLockstepBackend>` produce comparable traces of
//! the *same* orchestrator walk, which turns "the host executes the
//! schedule the simulator prices" from folklore into a property test
//! (see `tests/tests/exec_equivalence.rs`). It is also the seam future
//! tracing/observability hangs off without touching any backend.

use std::time::Duration;

use crate::backend::{Backend, ChunkAction};
use crate::placement::Capabilities;
use crate::report::RunReport;
use crate::spec::PipelineSpec;

/// One recorded orchestrator event.
///
/// Dependencies are recorded as indices of earlier events, so traces from
/// different backends (whose native tokens differ) compare directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A chunk-stage action was issued.
    Action {
        /// The action as the orchestrator specified it.
        action: ChunkAction,
        /// Indices of the events this action depends on.
        deps: Vec<usize>,
    },
    /// A lockstep step barrier closed over the listed events.
    Barrier {
        /// Indices of the events the barrier waits for.
        after: Vec<usize>,
    },
    /// The run finished.
    Finish,
}

/// A token pairing the inner backend's token with the trace index of the
/// event that produced it.
#[derive(Debug, Clone)]
pub struct Traced<T> {
    /// The wrapped backend's own token.
    pub inner: T,
    /// Index into the recorded event list.
    pub event: usize,
}

/// Wraps any [`Backend`] and records every orchestrator call as an
/// [`Event`] while delegating the work unchanged.
pub struct RecordingBackend<B> {
    inner: B,
    events: Vec<Event>,
}

impl<B> RecordingBackend<B> {
    /// Wrap `inner`, starting with an empty trace.
    pub fn new(inner: B) -> Self {
        RecordingBackend {
            inner,
            events: Vec::new(),
        }
    }

    /// The trace recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Unwrap, returning the inner backend and the trace.
    pub fn into_parts(self) -> (B, Vec<Event>) {
        (self.inner, self.events)
    }

    /// The inner backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for RecordingBackend<B> {
    type Token = Traced<B::Token>;

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn issue(
        &mut self,
        spec: &PipelineSpec,
        action: ChunkAction,
        deps: &[Self::Token],
    ) -> Self::Token {
        let dep_events: Vec<usize> = deps.iter().map(|t| t.event).collect();
        let dep_tokens: Vec<B::Token> = deps.iter().map(|t| t.inner.clone()).collect();
        let inner = self.inner.issue(spec, action, &dep_tokens);
        self.events.push(Event::Action {
            action,
            deps: dep_events,
        });
        Traced {
            inner,
            event: self.events.len() - 1,
        }
    }

    fn step_barrier(&mut self, spec: &PipelineSpec, after: &[Self::Token]) -> Self::Token {
        let after_events: Vec<usize> = after.iter().map(|t| t.event).collect();
        let after_tokens: Vec<B::Token> = after.iter().map(|t| t.inner.clone()).collect();
        let inner = self.inner.step_barrier(spec, &after_tokens);
        self.events.push(Event::Barrier {
            after: after_events,
        });
        Traced {
            inner,
            event: self.events.len() - 1,
        }
    }

    fn finish(&mut self, spec: &PipelineSpec) -> Result<(), String> {
        self.events.push(Event::Finish);
        self.inner.finish(spec)
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }
}

/// A backend that executes nothing: every placement is supported, tokens
/// are `()`, actions disappear. Useful for extracting a pure schedule
/// trace (`RecordingBackend<NullBackend>`) or counting work.
#[derive(Debug, Default)]
pub struct NullBackend {
    issued: usize,
    barriers: usize,
}

impl NullBackend {
    /// A fresh null backend.
    pub fn new() -> Self {
        NullBackend::default()
    }

    /// Number of actions issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Number of step barriers closed so far.
    pub fn barriers(&self) -> usize {
        self.barriers
    }

    /// A zero report (the null backend does no work and keeps no clock).
    pub fn report(&self) -> RunReport {
        RunReport::empty()
    }
}

impl Backend for NullBackend {
    type Token = ();

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, _action: ChunkAction, _deps: &[()]) {
        self.issued += 1;
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, _after: &[()]) {
        self.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Stage;
    use crate::drive::drive;
    use crate::placement::Placement;
    use crate::spec::Workload;

    fn spec(lockstep: bool) -> PipelineSpec {
        PipelineSpec {
            total_bytes: 4 * 64,
            chunk_bytes: 64,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    #[test]
    fn trace_is_identical_across_backends_for_one_spec() {
        // Two *different* backend types driven with the same spec produce
        // the same event trace: the orchestrator, not the backend, owns
        // the schedule.
        let s = spec(true);
        let mut a = RecordingBackend::new(NullBackend::new());
        drive(&mut a, &s).unwrap();

        let mut b = RecordingBackend::new(RecordingBackend::new(NullBackend::new()));
        drive(&mut b, &s).unwrap();

        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn dataflow_trace_records_ring_recycling_deps() {
        let s = spec(false);
        let mut r = RecordingBackend::new(NullBackend::new());
        drive(&mut r, &s).unwrap();
        // Find copy-in of chunk 3: it must depend on exactly one event,
        // the copy-out of chunk 0 (slot recycling).
        let events = r.events();
        let dep_of_copyin3 = events
            .iter()
            .find_map(|e| match e {
                Event::Action { action, deps }
                    if action.stage == Stage::CopyIn && action.chunk == 3 =>
                {
                    Some(deps.clone())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(dep_of_copyin3.len(), 1);
        match &events[dep_of_copyin3[0]] {
            Event::Action { action, .. } => {
                assert_eq!(action.stage, Stage::CopyOut);
                assert_eq!(action.chunk, 0);
            }
            other => panic!("expected copy-out action, got {other:?}"),
        }
    }

    #[test]
    fn null_backend_counts_schedule_size() {
        let s = spec(true);
        let mut b = NullBackend::new();
        drive(&mut b, &s).unwrap();
        // 4 chunks x 3 stages, plus one barrier per step (n + 2).
        assert_eq!(b.issued(), 12);
        assert_eq!(b.barriers(), 6);
        assert_eq!(b.report().chunks, 0);
    }
}
