//! The host-side buffer ring: the blocking realisation of the dataflow
//! dependency edges [`drive`](crate::drive) issues.
//!
//! [`drive`](crate::drive) expresses the non-lockstep schedule as token
//! dependencies: compute on chunk `c` after its copy-in, copy-out after
//! its compute, and copy-in of chunk `c` after copy-out of chunk
//! `c - RING_SLOTS` frees the slot. A host backend running real
//! coordinator threads realises those edges with this module's phase
//! machine: each of the [`RING_SLOTS`](crate::RING_SLOTS) slots cycles
//! `Empty(c) → Filled(c) → Computed(c) → Empty(c + RING_SLOTS)`, and a
//! coordinator blocks in [`BufSlot::await_phase`] until the phase that
//! hands it the buffer arrives. The condvar discipline used here is
//! machine-checked in `mlm-verify` (`models::ring` for the phase baton,
//! `models::condvar` for the wakeup protocol); the audit notes on each
//! method point at the checker variant that fails without it.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one ring slot. A slot cycles
/// `Empty(c) → Filled(c) → Computed(c) → Empty(c + RING_SLOTS)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Free for copy-in of chunk `chunk`.
    Empty,
    /// Holds the input of chunk `chunk`, ready for compute.
    Filled,
    /// Holds the output of chunk `chunk`, ready for copy-out.
    Computed,
}

#[derive(Debug, Clone, Copy)]
struct SlotState {
    phase: Phase,
    chunk: usize,
}

/// One slot of the three-buffer ring.
///
/// The `state` mutex + condvar implement the phase machine; `data` is
/// accessed through `UnsafeCell` because the coordinator that observed the
/// right phase holds *logical* exclusive ownership of the buffer until it
/// publishes the next phase — holding the mutex across a multi-megabyte
/// memcpy would serialize the stages the schedule exists to overlap.
pub struct BufSlot<T> {
    state: Mutex<SlotState>,
    cv: Condvar,
    data: UnsafeCell<Vec<T>>,
}

// SAFETY: `data` is only touched by the coordinator whose awaited phase
// grants it exclusive ownership (see the protocol in `await_phase` /
// `publish`); the mutex release/acquire pair on `state` provides the
// happens-before edge between the owner handing the buffer off and the
// next owner reading it.
//
// Why `T: Send` is the right bound (and `T: Sync` is not needed): sharing
// `&BufSlot<T>` across the three stage coordinators never produces
// concurrent `&T` access — the phase machine is a baton pass, so at any
// instant at most one thread holds any reference into the `Vec<T>`. What
// the protocol *does* do is hand the whole buffer from one thread to the
// next (copy-in fills it, compute mutates it, copy-out drains it), which
// is exactly an ownership transfer between threads — the capability
// `T: Send` licenses. Dropping to no bound would be unsound: e.g.
// `BufSlot<Rc<u64>>` would let copy-in clone `Rc`s that compute then
// drops on another thread, racing the non-atomic refcount. The protocol
// itself is machine-checked in `mlm-verify` (`models::ring` for the phase
// baton, `models::condvar` for the wakeup discipline); this impl is the
// one line the checker cannot see, so the argument lives here.
//
// Compile-fail check (rustdoc does not run doctests on private items, so
// this is documentation, not an executed test — the claim it records is
// that the bound below rejects non-`Send` payloads):
//
// ```compile_fail
// let slot = BufSlot::<std::rc::Rc<u64>>::new(0);
// std::thread::scope(|s| { s.spawn(|| &slot); }); // Rc<u64>: !Send
// ```
unsafe impl<T: Send> Sync for BufSlot<T> {}

impl<T> BufSlot<T> {
    /// A fresh slot, `Empty` and awaiting copy-in of `first_chunk`.
    pub fn new(first_chunk: usize) -> Self {
        BufSlot {
            state: Mutex::new(SlotState {
                phase: Phase::Empty,
                chunk: first_chunk,
            }),
            cv: Condvar::new(),
            data: UnsafeCell::new(Vec::new()),
        }
    }

    /// Block until this slot reaches `(phase, chunk)`, returning the time
    /// spent blocked. Panics if a peer stage has poisoned the run.
    ///
    /// Audit note (mlm-verify `models::condvar`): the predicate is
    /// re-checked after *every* wakeup. Two distinct waiters can park on
    /// this one condvar (copy-out awaiting `Computed(c)` and copy-in
    /// awaiting `Empty(c + 3)` share slot `c % 3`), so a wakeup proves
    /// nothing about *whose* predicate became true; claiming without the
    /// re-check is the checker's `NoRecheck` ownership violation, and it
    /// also absorbs spurious wakeups.
    pub fn await_phase(&self, phase: Phase, chunk: usize, poisoned: &AtomicBool) -> Duration {
        let t0 = Instant::now();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if poisoned.load(Ordering::SeqCst) {
                // panic_any keeps the payload a `&str`, which is how
                // `is_poison_payload` recognizes secondary aborts.
                std::panic::panic_any(POISON_MSG);
            }
            if st.phase == phase && st.chunk == chunk {
                return t0.elapsed();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Publish this slot's next `(phase, chunk)` and wake all waiters.
    ///
    /// Audit note (mlm-verify `models::condvar`): the store and the notify
    /// both happen under the slot lock, so no waiter can check the old
    /// state and park in between (`PoisonSkipLock`'s lost wakeup); and it
    /// must be `notify_all`, because with two kinds of waiters per slot a
    /// `notify_one` token can land on the waiter whose predicate is still
    /// false (`NotifyOne`'s deadlock, reachable from 4 chunks on).
    pub fn publish(&self, phase: Phase, chunk: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = SlotState { phase, chunk };
        self.cv.notify_all();
    }

    /// The slot's buffer, mutably.
    ///
    /// # Safety
    /// The caller must hold the phase baton: it has observed (via
    /// [`await_phase`](Self::await_phase)) the phase that grants its stage
    /// exclusive ownership of the buffer, and must not use the reference
    /// after publishing the next phase.
    #[allow(clippy::mut_from_ref)]
    // SAFETY: contract documented in `# Safety` above — the caller's
    // observed phase is the exclusive-ownership token for the buffer.
    pub unsafe fn data_mut(&self) -> &mut Vec<T> {
        // SAFETY: forwarded to the caller — the phase baton guarantees at
        // most one coordinator holds any reference into the buffer.
        unsafe { &mut *self.data.get() }
    }

    /// The slot's buffer, shared.
    ///
    /// # Safety
    /// Same contract as [`data_mut`](Self::data_mut): the caller's stage
    /// owns the buffer for the current phase.
    // SAFETY: contract documented in `# Safety` above, as in `data_mut`.
    pub unsafe fn data_ref(&self) -> &Vec<T> {
        // SAFETY: forwarded to the caller, as in `data_mut`.
        unsafe { &*self.data.get() }
    }
}

/// Panic message used when a stage aborts because a *peer* stage panicked;
/// recognized by [`is_poison_payload`] so the original panic payload wins
/// when both propagate.
pub const POISON_MSG: &str = "host pipeline dataflow run aborted: a peer stage panicked";

/// Is `payload` a secondary abort (a stage that died because a peer
/// poisoned the ring), as opposed to the original panic?
pub fn is_poison_payload(payload: &(dyn Any + Send)) -> bool {
    payload.downcast_ref::<&str>() == Some(&POISON_MSG)
}

/// Mark the run poisoned and wake every coordinator. Taking each slot's
/// lock before notifying guarantees no coordinator can re-check the flag
/// and park between our store and our notify (no lost wakeups).
///
/// mlm-verify's `models::condvar` checks exactly this discipline: its
/// `Correct` variant (which locks here) verifies deadlock-free with poison
/// injected at every (stage, chunk), while `PoisonSkipLock` (notify
/// without the lock) deadlocks a waiter parked in that window.
fn poison<T>(slots: &[BufSlot<T>], poisoned: &AtomicBool) {
    poisoned.store(true, Ordering::SeqCst);
    for slot in slots {
        let _guard = slot.state.lock().unwrap_or_else(|e| e.into_inner());
        slot.cv.notify_all();
    }
}

/// Outcome of one coordinator: cumulative blocked time, or the panic
/// payload that killed it.
pub type StageResult = Result<Duration, Box<dyn Any + Send>>;

/// Run one stage coordinator, converting a panic into a poisoned ring (so
/// the peer stages wake up and abort instead of deadlocking on a phase
/// that will never come) plus the captured payload.
pub fn coordinate<T>(
    slots: &[BufSlot<T>],
    poisoned: &AtomicBool,
    body: impl FnOnce() -> Duration,
) -> StageResult {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(waited) => Ok(waited),
        Err(payload) => {
            poison(slots, poisoned);
            Err(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baton_pass_carries_the_buffer_between_threads() {
        let slots: Vec<BufSlot<u64>> = (0..3).map(BufSlot::new).collect();
        let poisoned = AtomicBool::new(false);
        let slots = &slots;
        let poisoned = &poisoned;
        std::thread::scope(|s| {
            s.spawn(move || {
                for c in 0..6usize {
                    let slot = &slots[c % 3];
                    slot.await_phase(Phase::Empty, c, poisoned);
                    // SAFETY: Empty(c) hands this thread the buffer.
                    unsafe { slot.data_mut() }.push(c as u64);
                    slot.publish(Phase::Filled, c);
                }
            });
            s.spawn(move || {
                for c in 0..6usize {
                    let slot = &slots[c % 3];
                    slot.await_phase(Phase::Filled, c, poisoned);
                    // SAFETY: Filled(c) hands this thread the buffer.
                    assert_eq!(unsafe { slot.data_ref() }.last(), Some(&(c as u64)));
                    slot.publish(Phase::Empty, c + 3);
                }
            });
        });
    }

    #[test]
    fn coordinate_poisons_peers_on_panic() {
        let slots: Vec<BufSlot<u64>> = (0..3).map(BufSlot::new).collect();
        let poisoned = AtomicBool::new(false);
        let r = coordinate(&slots, &poisoned, || panic!("kernel died"));
        assert!(r.is_err());
        assert!(poisoned.load(Ordering::SeqCst));
        // A waiter that arrives after the poison aborts instead of parking
        // forever; its payload is recognizably secondary.
        let r2 = coordinate(&slots, &poisoned, || {
            slots[0].await_phase(Phase::Computed, 99, &poisoned)
        });
        match r2 {
            // `&*p`, not `&p`: a plain `&p` unsize-coerces the `Box` itself
            // into `dyn Any`, hiding the payload from the downcast.
            Err(p) => assert!(is_poison_payload(&*p)),
            Ok(_) => panic!("waiter must abort on a poisoned ring"),
        }
    }
}
