//! The [`Backend`] trait: what a memory system must offer so the shared
//! orchestrator can run the paper's chunk schedule on it.

use std::time::Duration;

use crate::placement::Capabilities;
use crate::spec::PipelineSpec;

/// One of the three pipeline stages of the §3 framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage a chunk from DDR into the chunk buffer.
    CopyIn,
    /// Run the kernel over the (staged or in-place) chunk.
    Compute,
    /// Drain the computed chunk back to DDR.
    CopyOut,
}

/// One unit of schedule work: apply `stage` to `chunk` in ring slot
/// `slot`.
///
/// The slot is `chunk % RING_SLOTS` — the orchestrator owns the
/// buffer-ring discipline; backends merely honour it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkAction {
    /// Which pipeline stage to run.
    pub stage: Stage,
    /// Chunk index within the run.
    pub chunk: usize,
    /// Buffer-ring slot the chunk occupies.
    pub slot: usize,
}

/// How a chunk kernel sees its slice of the current chunk.
///
/// Backends that run real kernels (the host adapters) hand one of these
/// to each compute task; `global_offset` makes a pure positional kernel
/// independent of how the backend slices chunks across threads — the
/// property the cross-backend equivalence tests rely on.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx {
    /// Chunk index within the run.
    pub chunk: usize,
    /// Compute-thread index within the pool.
    pub thread: usize,
    /// Global element offset of this slice within the whole data set.
    pub global_offset: usize,
}

/// A memory system the chunk orchestrator can drive.
///
/// The orchestrator ([`crate::drive`]) expresses the whole schedule —
/// lockstep, dataflow, and implicit cache mode — through three
/// primitives: *issue* one chunk-stage action with explicit dependencies,
/// close a lockstep *step barrier*, and *finish*. A backend may execute
/// eagerly (the simulator pushes ops as they are issued), at each barrier
/// (the lockstep host runs one task batch per step), or all at the end
/// (the dataflow host replays the recorded schedule on its stage pools) —
/// the dependency tokens carry enough structure for any of these.
pub trait Backend {
    /// Handle to issued work, used to express dependencies. The simulator
    /// uses op-id lists; host adapters, which realise dependencies through
    /// barriers or the buffer ring, use `()`.
    type Token: Clone;

    /// The placements this backend can execute. [`crate::drive`] refuses
    /// specs outside this set before issuing any work.
    fn capabilities(&self) -> Capabilities;

    /// Issue one chunk-stage action that must run after every token in
    /// `deps`.
    fn issue(
        &mut self,
        spec: &PipelineSpec,
        action: ChunkAction,
        deps: &[Self::Token],
    ) -> Self::Token;

    /// Close a lockstep step: everything issued later and depending on the
    /// returned token runs after every token in `after`.
    fn step_barrier(&mut self, spec: &PipelineSpec, after: &[Self::Token]) -> Self::Token;

    /// Complete the run, executing any deferred work.
    fn finish(&mut self, spec: &PipelineSpec) -> Result<(), String> {
        let _ = spec;
        Ok(())
    }

    /// The backend's clock: wall time elapsed since the run began, or
    /// [`Duration::ZERO`] on virtual-time backends (the simulator prices
    /// its op graph in the engine, not here).
    fn now(&self) -> Duration {
        Duration::ZERO
    }
}
