//! # mlm-exec — the backend execution layer
//!
//! The paper's central discipline (§3) is *one* schedule — step `s` copies
//! in chunk `s`, computes on chunk `s-1`, copies out chunk `s-2` over a
//! three-slot buffer ring — executed against different memory systems.
//! Before this crate existed the repo encoded that schedule twice per
//! subsystem: once in each `host.rs` (real threads, real buffers) and once
//! in each `sim.rs` (a [`knl-sim`] op graph), and the two copies drifted
//! (the dataflow fix of PR 2 landed in the host path only).
//!
//! `mlm-exec` holds the orchestration *once*:
//!
//! * [`PipelineSpec`] + [`Placement`] — the shared vocabulary of a chunked
//!   execution (moved here from `mlm-core::pipeline`, which re-exports
//!   them);
//! * [`Backend`] — the primitive surface a memory system must offer:
//!   issue one chunk-stage action, close a lockstep step, tell the time;
//! * [`plan`] — the workload-generic plan IR ([`WorkloadPlan`]): a DAG of
//!   stage-in / compute-kernel / stage-out nodes with tagged dependency
//!   edges (sequencing, dataflow, buffer recycling, inter-chunk halo)
//!   that every workload family lowers into and every executor
//!   interprets;
//! * [`drive`] — the orchestrator that builds the plan for the spec's
//!   workload (map or halo-exchanging stencil; lockstep, dataflow, and
//!   implicit cache mode) and interprets it over the backend;
//! * [`graph`] — the recorded dependency DAG ([`graph::DepGraph`]) shared
//!   by the fuzzer and the static schedule verifier ([`graph::analyze`],
//!   diagnostics G001–G006), plus [`drive_verified`], the preflight-gated
//!   orchestrator entry point;
//! * [`RunReport`]/[`StageReport`] — the unified stats every backend
//!   returns;
//! * [`RecordingBackend`] — a composable wrapper that turns any backend
//!   into an event-trace producer, making host ≡ sim equivalence a
//!   property test instead of folklore;
//! * [`SortPlan`] — the megachunk-level phase sequence of the §4 sort
//!   algorithms, which [`SortPlan::to_workload_plan`] lowers onto the
//!   generic IR for the sort host executor and sim lowering.
//!
//! Concrete backends live next to the machinery they adapt: the host
//! adapters over `parsort::pool` in `mlm-core::pipeline::host`, the
//! simulator adapter over `knl-sim` in `mlm-core::pipeline::sim`. This
//! crate deliberately depends on nothing but `serde`, so every layer of
//! the workspace (including `knl-sim` and `mlm-memkind`) can share its
//! vocabulary without dependency cycles.
//!
//! [`knl-sim`]: https://example.org/mlm-knl

#![warn(missing_docs)]

pub mod backend;
pub mod drive;
pub mod error;
pub mod fuzz;
pub mod graph;
pub mod placement;
pub mod plan;
pub mod recording;
pub mod report;
pub mod ring;
pub mod sortplan;
pub mod spec;

pub use backend::{Backend, ChunkAction, KernelCtx, Stage};
pub use drive::{drive, drive_verified, RING_SLOTS, STENCIL_RING_SLOTS};
pub use error::DriveError;
pub use placement::{Capabilities, MemTier, Placement};
pub use plan::{
    interpret, plan_pipeline, waves, EdgeKind, KernelDesc, PlanEdge, PlanKind, PlanNode,
    WorkloadPlan,
};
pub use recording::{Event, NullBackend, RecordingBackend};
pub use report::{RunReport, StageReport};
pub use sortplan::{
    mega_size, plan_sort, ChunkSortStyle, SortPhase, SortPlan, SortStructure,
    SORT_KERNEL_CHUNK_SORT, SORT_KERNEL_FINAL_MERGE, SORT_KERNEL_MERGE_RUNS,
    SORT_KERNEL_THREAD_MERGE, SORT_KERNEL_THREAD_SORT,
};
pub use spec::{PipelineSpec, Workload};
