//! The megachunk-level phase plan of the §4 sort algorithms.
//!
//! Every Table-1 sort variant is a sequence of *phases* — stage a
//! megachunk in, sort its chunks, merge the sorted runs out, and finally
//! merge across megachunks — differing only in where the bytes live and
//! which phases a variant needs. That sequence used to be spelled twice
//! (once in `mlm-core::sort::host`, once in `sort::sim`); it is now
//! planned here once, and the two executors interpret the same
//! [`SortPlan`]: the host runs each phase on real threads and buffers,
//! the sim lowers each phase to `knl-sim` ops with per-tier rates.

use serde::{Deserialize, Serialize};

/// The megachunk-level shape of a sort variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortStructure {
    /// One unchunked whole-array sort (the GNU baselines): per-thread
    /// block sorts, one thread-count-way merge, copy back.
    Whole,
    /// Staged megachunks (MLM-sort, MLM-ddr, basic-chunked): each
    /// megachunk is copied into the working buffer, chunk-sorted there,
    /// and merged back out; a final k-way merge stitches the megachunks.
    Staged,
    /// In-place megachunks (MLM-implicit): no staging copy — chunks are
    /// sorted where they are, merged to scratch, and copied back.
    InPlace,
    /// Double-buffered megachunks (buffered MLM-sort, §6 future work):
    /// the staged sequence with `overlapped` dependencies, so a small
    /// copy pool prefetches megachunk `m+1` while `m` computes.
    Buffered,
}

/// How a megachunk's chunk-sort phase is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkSortStyle {
    /// MLM style: one serial introsort per worker thread; the run merge
    /// is a loser-tree multiway merge that benefits from ordered input.
    Serial,
    /// GNU style: the library's parallel mergesort over the whole block,
    /// modeled with the calibrated GNU efficiency penalty and no
    /// ordered-input merge boost.
    Gnu,
}

/// One phase of a sort plan. Element counts are concrete; per-thread
/// splits, byte addresses, and rates are the executors' concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortPhase {
    /// Per-thread block sorts over the whole array ([`SortStructure::Whole`]).
    ThreadSort {
        /// Elements in the whole array.
        elems: u64,
    },
    /// Thread-count-way merge of the per-thread runs into scratch.
    ThreadMerge {
        /// Elements merged.
        elems: u64,
    },
    /// Stage megachunk `mega` into the working buffer.
    StageIn {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk (the last may be ragged).
        elems: u64,
    },
    /// Sort megachunk `mega`'s chunks in the working buffer (or in place
    /// for [`SortStructure::InPlace`]).
    ChunkSort {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Multiway-merge megachunk `mega`'s sorted runs out of the working
    /// buffer (to the data array, or to scratch for
    /// [`SortStructure::InPlace`]).
    MergeRuns {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Copy megachunk `mega` back from scratch
    /// ([`SortStructure::InPlace`] only).
    CopyBack {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Final k-way merge across sorted megachunks into scratch.
    FinalMerge {
        /// Elements in the whole array.
        elems: u64,
        /// Number of sorted megachunk runs.
        k: usize,
    },
    /// Copy the whole array back from scratch.
    FinalCopyBack {
        /// Elements in the whole array.
        elems: u64,
    },
}

/// The full phase sequence of one sort run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortPlan {
    /// The megachunk-level shape.
    pub structure: SortStructure,
    /// How chunk sorts are realised (and whether GNU penalties apply).
    pub chunk_style: ChunkSortStyle,
    /// Total elements.
    pub n_elems: u64,
    /// Elements per megachunk, clamped to `n_elems`.
    pub mega_elems: u64,
    /// Number of megachunks.
    pub megachunks: usize,
    /// `true` for [`SortStructure::Buffered`]: executors connect the
    /// phases of consecutive megachunks by dataflow dependencies (double
    /// buffering) instead of barriers.
    pub overlapped: bool,
    /// The phases, in execution (and issue) order.
    pub phases: Vec<SortPhase>,
}

/// Elements in megachunk `m` of an `n`-element array cut into
/// `mega_elems`-element megachunks (the last may be ragged).
pub fn mega_size(n: u64, mega_elems: u64, m: usize) -> u64 {
    let lo = m as u64 * mega_elems;
    mega_elems.min(n - lo.min(n))
}

/// Plan the phase sequence for one sort run.
///
/// `n_elems` and `mega_elems` must be positive; `mega_elems` is clamped
/// to `n_elems` (a megachunk larger than the data is the
/// megachunk-equals-problem-size configuration of Table 1).
pub fn plan_sort(
    structure: SortStructure,
    chunk_style: ChunkSortStyle,
    n_elems: u64,
    mega_elems: u64,
) -> SortPlan {
    assert!(n_elems > 0, "empty workload");
    assert!(mega_elems > 0, "megachunk must be positive");
    let mega_elems = mega_elems.min(n_elems);
    let megachunks = n_elems.div_ceil(mega_elems) as usize;
    let mut phases = Vec::new();

    match structure {
        SortStructure::Whole => {
            phases.push(SortPhase::ThreadSort { elems: n_elems });
            phases.push(SortPhase::ThreadMerge { elems: n_elems });
            phases.push(SortPhase::FinalCopyBack { elems: n_elems });
        }
        SortStructure::Staged | SortStructure::Buffered => {
            for m in 0..megachunks {
                let elems = mega_size(n_elems, mega_elems, m);
                phases.push(SortPhase::StageIn { mega: m, elems });
                phases.push(SortPhase::ChunkSort { mega: m, elems });
                phases.push(SortPhase::MergeRuns { mega: m, elems });
            }
            if megachunks > 1 {
                phases.push(SortPhase::FinalMerge {
                    elems: n_elems,
                    k: megachunks,
                });
                phases.push(SortPhase::FinalCopyBack { elems: n_elems });
            }
        }
        SortStructure::InPlace => {
            for m in 0..megachunks {
                let elems = mega_size(n_elems, mega_elems, m);
                phases.push(SortPhase::ChunkSort { mega: m, elems });
                phases.push(SortPhase::MergeRuns { mega: m, elems });
                phases.push(SortPhase::CopyBack { mega: m, elems });
            }
            if megachunks > 1 {
                phases.push(SortPhase::FinalMerge {
                    elems: n_elems,
                    k: megachunks,
                });
                phases.push(SortPhase::FinalCopyBack { elems: n_elems });
            }
        }
    }

    SortPlan {
        structure,
        chunk_style,
        n_elems,
        mega_elems,
        megachunks,
        overlapped: structure == SortStructure::Buffered,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mega_size_handles_ragged_tail() {
        assert_eq!(mega_size(10, 4, 0), 4);
        assert_eq!(mega_size(10, 4, 1), 4);
        assert_eq!(mega_size(10, 4, 2), 2);
        assert_eq!(mega_size(10, 4, 3), 0);
        assert_eq!(mega_size(4, 8, 0), 4);
    }

    #[test]
    fn staged_plan_covers_every_megachunk_then_merges() {
        let p = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 4);
        assert_eq!(p.megachunks, 3);
        assert!(!p.overlapped);
        let megas: Vec<usize> = p
            .phases
            .iter()
            .filter_map(|ph| match ph {
                SortPhase::ChunkSort { mega, .. } => Some(*mega),
                _ => None,
            })
            .collect();
        assert_eq!(megas, vec![0, 1, 2]);
        assert!(matches!(
            p.phases[p.phases.len() - 2],
            SortPhase::FinalMerge { k: 3, elems: 10 }
        ));
        assert!(matches!(
            p.phases.last(),
            Some(SortPhase::FinalCopyBack { elems: 10 })
        ));
    }

    #[test]
    fn single_megachunk_needs_no_final_merge() {
        let p = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 100);
        assert_eq!(p.megachunks, 1);
        assert_eq!(p.mega_elems, 10, "megachunk clamps to the data size");
        assert!(!p
            .phases
            .iter()
            .any(|ph| matches!(ph, SortPhase::FinalMerge { .. })));
    }

    #[test]
    fn in_place_plan_copies_back_per_megachunk() {
        let p = plan_sort(SortStructure::InPlace, ChunkSortStyle::Serial, 8, 4);
        let kinds: Vec<&'static str> = p
            .phases
            .iter()
            .map(|ph| match ph {
                SortPhase::ChunkSort { .. } => "sort",
                SortPhase::MergeRuns { .. } => "merge",
                SortPhase::CopyBack { .. } => "copy",
                SortPhase::FinalMerge { .. } => "final",
                SortPhase::FinalCopyBack { .. } => "back",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["sort", "merge", "copy", "sort", "merge", "copy", "final", "back"]
        );
    }

    #[test]
    fn whole_plan_is_three_phases() {
        let p = plan_sort(SortStructure::Whole, ChunkSortStyle::Gnu, 100, 7);
        assert_eq!(p.phases.len(), 3);
    }

    #[test]
    fn buffered_plan_is_staged_and_overlapped() {
        let p = plan_sort(SortStructure::Buffered, ChunkSortStyle::Serial, 10, 4);
        let q = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 4);
        assert!(p.overlapped);
        assert_eq!(p.phases, q.phases);
    }
}
