//! The megachunk-level phase plan of the §4 sort algorithms.
//!
//! Every Table-1 sort variant is a sequence of *phases* — stage a
//! megachunk in, sort its chunks, merge the sorted runs out, and finally
//! merge across megachunks — differing only in where the bytes live and
//! which phases a variant needs. That sequence used to be spelled twice
//! (once in `mlm-core::sort::host`, once in `sort::sim`); it is now
//! planned here once, and the two executors interpret the same
//! [`SortPlan`]: the host runs each phase on real threads and buffers,
//! the sim lowers each phase to `knl-sim` ops with per-tier rates.

use serde::{Deserialize, Serialize};

use crate::plan::{EdgeKind, KernelDesc, PlanEdge, PlanKind, PlanNode, WorkloadPlan};

/// The megachunk-level shape of a sort variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortStructure {
    /// One unchunked whole-array sort (the GNU baselines): per-thread
    /// block sorts, one thread-count-way merge, copy back.
    Whole,
    /// Staged megachunks (MLM-sort, MLM-ddr, basic-chunked): each
    /// megachunk is copied into the working buffer, chunk-sorted there,
    /// and merged back out; a final k-way merge stitches the megachunks.
    Staged,
    /// In-place megachunks (MLM-implicit): no staging copy — chunks are
    /// sorted where they are, merged to scratch, and copied back.
    InPlace,
    /// Double-buffered megachunks (buffered MLM-sort, §6 future work):
    /// the staged sequence with `overlapped` dependencies, so a small
    /// copy pool prefetches megachunk `m+1` while `m` computes.
    Buffered,
}

/// How a megachunk's chunk-sort phase is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkSortStyle {
    /// MLM style: one serial introsort per worker thread; the run merge
    /// is a loser-tree multiway merge that benefits from ordered input.
    Serial,
    /// GNU style: the library's parallel mergesort over the whole block,
    /// modeled with the calibrated GNU efficiency penalty and no
    /// ordered-input merge boost.
    Gnu,
}

/// One phase of a sort plan. Element counts are concrete; per-thread
/// splits, byte addresses, and rates are the executors' concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortPhase {
    /// Per-thread block sorts over the whole array ([`SortStructure::Whole`]).
    ThreadSort {
        /// Elements in the whole array.
        elems: u64,
    },
    /// Thread-count-way merge of the per-thread runs into scratch.
    ThreadMerge {
        /// Elements merged.
        elems: u64,
    },
    /// Stage megachunk `mega` into the working buffer.
    StageIn {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk (the last may be ragged).
        elems: u64,
    },
    /// Sort megachunk `mega`'s chunks in the working buffer (or in place
    /// for [`SortStructure::InPlace`]).
    ChunkSort {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Multiway-merge megachunk `mega`'s sorted runs out of the working
    /// buffer (to the data array, or to scratch for
    /// [`SortStructure::InPlace`]).
    MergeRuns {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Copy megachunk `mega` back from scratch
    /// ([`SortStructure::InPlace`] only).
    CopyBack {
        /// Megachunk index.
        mega: usize,
        /// Elements in this megachunk.
        elems: u64,
    },
    /// Final k-way merge across sorted megachunks into scratch.
    FinalMerge {
        /// Elements in the whole array.
        elems: u64,
        /// Number of sorted megachunk runs.
        k: usize,
    },
    /// Copy the whole array back from scratch.
    FinalCopyBack {
        /// Elements in the whole array.
        elems: u64,
    },
}

/// The full phase sequence of one sort run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortPlan {
    /// The megachunk-level shape.
    pub structure: SortStructure,
    /// How chunk sorts are realised (and whether GNU penalties apply).
    pub chunk_style: ChunkSortStyle,
    /// Total elements.
    pub n_elems: u64,
    /// Elements per megachunk, clamped to `n_elems`.
    pub mega_elems: u64,
    /// Number of megachunks.
    pub megachunks: usize,
    /// `true` for [`SortStructure::Buffered`]: executors connect the
    /// phases of consecutive megachunks by dataflow dependencies (double
    /// buffering) instead of barriers.
    pub overlapped: bool,
    /// The phases, in execution (and issue) order.
    pub phases: Vec<SortPhase>,
}

/// Kernel-table index of the chunk-sort kernel in a lowered sort plan.
pub const SORT_KERNEL_CHUNK_SORT: usize = 0;
/// Kernel-table index of the run-merge (merge-out) kernel.
pub const SORT_KERNEL_MERGE_RUNS: usize = 1;
/// Kernel-table index of the per-thread block-sort kernel.
pub const SORT_KERNEL_THREAD_SORT: usize = 2;
/// Kernel-table index of the thread-count-way merge kernel.
pub const SORT_KERNEL_THREAD_MERGE: usize = 3;
/// Kernel-table index of the final k-way megachunk merge kernel.
pub const SORT_KERNEL_FINAL_MERGE: usize = 4;

impl SortPlan {
    /// Lower the megachunk phase sequence into the workload-generic
    /// [`WorkloadPlan`] IR.
    ///
    /// Every phase becomes one node — [`SortPhase::StageIn`] a
    /// [`PlanKind::StageIn`], [`SortPhase::ChunkSort`] a
    /// [`PlanKind::Kernel`], [`SortPhase::MergeRuns`] a
    /// [`PlanKind::StageOut`] *carrying* the merge kernel (the sort
    /// family's drain transforms as it copies), [`SortPhase::CopyBack`] a
    /// plain [`PlanKind::StageOut`], and the whole-array phases
    /// ([`SortPhase::ThreadSort`], [`SortPhase::ThreadMerge`],
    /// [`SortPhase::FinalMerge`], [`SortPhase::FinalCopyBack`]) global
    /// nodes with `chunk: None`. Node `len` is in *elements*.
    ///
    /// Sequential structures chain every node to its predecessor with
    /// [`EdgeKind::Seq`] — [`crate::plan::waves`] degenerates to one node
    /// per wave, which is exactly the barrier-per-phase execution the
    /// host and sim always had. The [`SortStructure::Buffered`] structure
    /// instead emits the double-buffered dependency shape: megachunk `m`'s
    /// stage-in waits only for the merge-out of `m - 2`
    /// ([`EdgeKind::Recycle`] — its buffer's previous occupant), computes
    /// wait on their own stage-in ([`EdgeKind::Data`]), merges wait on
    /// their compute, so `waves` overlaps megachunk `m + 1`'s prefetch
    /// with `m`'s sort.
    pub fn to_workload_plan(&self) -> WorkloadPlan {
        let kernels = [
            "chunk-sort",
            "merge-runs",
            "thread-sort",
            "thread-merge",
            "final-merge",
        ]
        .iter()
        .map(|name| KernelDesc {
            name: (*name).to_string(),
            passes: 1,
            extra_read_bytes: 0,
        })
        .collect();
        let mut plan = WorkloadPlan {
            family: "sort",
            ring_slots: if self.overlapped { 2 } else { 1 },
            chunks: self.megachunks,
            kernels,
            nodes: Vec::new(),
        };

        if self.overlapped {
            self.lower_overlapped(&mut plan);
        } else {
            self.lower_sequential(&mut plan);
        }
        debug_assert_eq!(plan.validate(), Ok(()));
        plan
    }

    /// Sequential lowering: phases in order, each [`EdgeKind::Seq`]-chained
    /// to its predecessor.
    fn lower_sequential(&self, plan: &mut WorkloadPlan) {
        for phase in &self.phases {
            let (kind, chunk, kernel, len) = match *phase {
                SortPhase::ThreadSort { elems } => {
                    (PlanKind::Kernel, None, Some(SORT_KERNEL_THREAD_SORT), elems)
                }
                SortPhase::ThreadMerge { elems } => (
                    PlanKind::Kernel,
                    None,
                    Some(SORT_KERNEL_THREAD_MERGE),
                    elems,
                ),
                SortPhase::StageIn { mega, elems } => (PlanKind::StageIn, Some(mega), None, elems),
                SortPhase::ChunkSort { mega, elems } => (
                    PlanKind::Kernel,
                    Some(mega),
                    Some(SORT_KERNEL_CHUNK_SORT),
                    elems,
                ),
                SortPhase::MergeRuns { mega, elems } => (
                    PlanKind::StageOut,
                    Some(mega),
                    Some(SORT_KERNEL_MERGE_RUNS),
                    elems,
                ),
                SortPhase::CopyBack { mega, elems } => {
                    (PlanKind::StageOut, Some(mega), None, elems)
                }
                SortPhase::FinalMerge { elems, .. } => {
                    (PlanKind::Kernel, None, Some(SORT_KERNEL_FINAL_MERGE), elems)
                }
                SortPhase::FinalCopyBack { elems } => (PlanKind::StageOut, None, None, elems),
            };
            let deps = match plan.nodes.len() {
                0 => Vec::new(),
                n => vec![PlanEdge::new(n - 1, EdgeKind::Seq)],
            };
            plan.nodes.push(PlanNode {
                kind,
                chunk,
                slot: chunk.map_or(0, |m| m % plan.ring_slots),
                kernel,
                len,
                deps,
            });
        }
    }

    /// Double-buffered lowering ([`SortStructure::Buffered`]): nodes in
    /// pipeline-step order, `waves`-ready.
    fn lower_overlapped(&self, plan: &mut WorkloadPlan) {
        let n = self.megachunks;
        let push = |plan: &mut WorkloadPlan,
                    kind: PlanKind,
                    mega: usize,
                    kernel: Option<usize>,
                    deps: Vec<PlanEdge>| {
            plan.nodes.push(PlanNode {
                kind,
                chunk: Some(mega),
                slot: mega % plan.ring_slots,
                kernel,
                len: mega_size(self.n_elems, self.mega_elems, mega),
                deps,
            });
            plan.nodes.len() - 1
        };
        let mut stage_in: Vec<Option<usize>> = vec![None; n];
        let mut chunk_sort: Vec<Option<usize>> = vec![None; n];
        let mut merge_out: Vec<Option<usize>> = vec![None; n];

        // Step `s`: merge out megachunk `s - 2` (freeing its buffer),
        // chunk-sort `s - 1`, prefetch `s`. Within a step the merge-out is
        // emitted first so the stage-in's Recycle edge points backward.
        for s in 0..n + 2 {
            if s >= 2 && s - 2 < n {
                let m = s - 2;
                merge_out[m] = Some(push(
                    plan,
                    PlanKind::StageOut,
                    m,
                    Some(SORT_KERNEL_MERGE_RUNS),
                    vec![PlanEdge::new(
                        chunk_sort[m].expect("sorted in an earlier step"),
                        EdgeKind::Data,
                    )],
                ));
            }
            if s >= 1 && s - 1 < n {
                let m = s - 1;
                chunk_sort[m] = Some(push(
                    plan,
                    PlanKind::Kernel,
                    m,
                    Some(SORT_KERNEL_CHUNK_SORT),
                    vec![PlanEdge::new(
                        stage_in[m].expect("staged in an earlier step"),
                        EdgeKind::Data,
                    )],
                ));
            }
            if s < n {
                let deps = if s >= 2 {
                    vec![PlanEdge::new(
                        merge_out[s - 2].expect("merged out this step"),
                        EdgeKind::Recycle,
                    )]
                } else {
                    Vec::new()
                };
                stage_in[s] = Some(push(plan, PlanKind::StageIn, s, None, deps));
            }
        }

        if n > 1 {
            let deps = merge_out
                .iter()
                .map(|i| PlanEdge::new(i.expect("every megachunk merged out"), EdgeKind::Data))
                .collect();
            plan.nodes.push(PlanNode {
                kind: PlanKind::Kernel,
                chunk: None,
                slot: 0,
                kernel: Some(SORT_KERNEL_FINAL_MERGE),
                len: self.n_elems,
                deps,
            });
            plan.nodes.push(PlanNode {
                kind: PlanKind::StageOut,
                chunk: None,
                slot: 0,
                kernel: None,
                len: self.n_elems,
                deps: vec![PlanEdge::new(plan.nodes.len() - 1, EdgeKind::Data)],
            });
        }
    }
}

/// Elements in megachunk `m` of an `n`-element array cut into
/// `mega_elems`-element megachunks (the last may be ragged).
pub fn mega_size(n: u64, mega_elems: u64, m: usize) -> u64 {
    let lo = m as u64 * mega_elems;
    mega_elems.min(n - lo.min(n))
}

/// Plan the phase sequence for one sort run.
///
/// `n_elems` and `mega_elems` must be positive; `mega_elems` is clamped
/// to `n_elems` (a megachunk larger than the data is the
/// megachunk-equals-problem-size configuration of Table 1).
pub fn plan_sort(
    structure: SortStructure,
    chunk_style: ChunkSortStyle,
    n_elems: u64,
    mega_elems: u64,
) -> SortPlan {
    assert!(n_elems > 0, "empty workload");
    assert!(mega_elems > 0, "megachunk must be positive");
    let mega_elems = mega_elems.min(n_elems);
    let megachunks = n_elems.div_ceil(mega_elems) as usize;
    let mut phases = Vec::new();

    match structure {
        SortStructure::Whole => {
            phases.push(SortPhase::ThreadSort { elems: n_elems });
            phases.push(SortPhase::ThreadMerge { elems: n_elems });
            phases.push(SortPhase::FinalCopyBack { elems: n_elems });
        }
        SortStructure::Staged | SortStructure::Buffered => {
            for m in 0..megachunks {
                let elems = mega_size(n_elems, mega_elems, m);
                phases.push(SortPhase::StageIn { mega: m, elems });
                phases.push(SortPhase::ChunkSort { mega: m, elems });
                phases.push(SortPhase::MergeRuns { mega: m, elems });
            }
            if megachunks > 1 {
                phases.push(SortPhase::FinalMerge {
                    elems: n_elems,
                    k: megachunks,
                });
                phases.push(SortPhase::FinalCopyBack { elems: n_elems });
            }
        }
        SortStructure::InPlace => {
            for m in 0..megachunks {
                let elems = mega_size(n_elems, mega_elems, m);
                phases.push(SortPhase::ChunkSort { mega: m, elems });
                phases.push(SortPhase::MergeRuns { mega: m, elems });
                phases.push(SortPhase::CopyBack { mega: m, elems });
            }
            if megachunks > 1 {
                phases.push(SortPhase::FinalMerge {
                    elems: n_elems,
                    k: megachunks,
                });
                phases.push(SortPhase::FinalCopyBack { elems: n_elems });
            }
        }
    }

    SortPlan {
        structure,
        chunk_style,
        n_elems,
        mega_elems,
        megachunks,
        overlapped: structure == SortStructure::Buffered,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mega_size_handles_ragged_tail() {
        assert_eq!(mega_size(10, 4, 0), 4);
        assert_eq!(mega_size(10, 4, 1), 4);
        assert_eq!(mega_size(10, 4, 2), 2);
        assert_eq!(mega_size(10, 4, 3), 0);
        assert_eq!(mega_size(4, 8, 0), 4);
    }

    #[test]
    fn staged_plan_covers_every_megachunk_then_merges() {
        let p = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 4);
        assert_eq!(p.megachunks, 3);
        assert!(!p.overlapped);
        let megas: Vec<usize> = p
            .phases
            .iter()
            .filter_map(|ph| match ph {
                SortPhase::ChunkSort { mega, .. } => Some(*mega),
                _ => None,
            })
            .collect();
        assert_eq!(megas, vec![0, 1, 2]);
        assert!(matches!(
            p.phases[p.phases.len() - 2],
            SortPhase::FinalMerge { k: 3, elems: 10 }
        ));
        assert!(matches!(
            p.phases.last(),
            Some(SortPhase::FinalCopyBack { elems: 10 })
        ));
    }

    #[test]
    fn single_megachunk_needs_no_final_merge() {
        let p = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 100);
        assert_eq!(p.megachunks, 1);
        assert_eq!(p.mega_elems, 10, "megachunk clamps to the data size");
        assert!(!p
            .phases
            .iter()
            .any(|ph| matches!(ph, SortPhase::FinalMerge { .. })));
    }

    #[test]
    fn in_place_plan_copies_back_per_megachunk() {
        let p = plan_sort(SortStructure::InPlace, ChunkSortStyle::Serial, 8, 4);
        let kinds: Vec<&'static str> = p
            .phases
            .iter()
            .map(|ph| match ph {
                SortPhase::ChunkSort { .. } => "sort",
                SortPhase::MergeRuns { .. } => "merge",
                SortPhase::CopyBack { .. } => "copy",
                SortPhase::FinalMerge { .. } => "final",
                SortPhase::FinalCopyBack { .. } => "back",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["sort", "merge", "copy", "sort", "merge", "copy", "final", "back"]
        );
    }

    #[test]
    fn whole_plan_is_three_phases() {
        let p = plan_sort(SortStructure::Whole, ChunkSortStyle::Gnu, 100, 7);
        assert_eq!(p.phases.len(), 3);
    }

    #[test]
    fn buffered_plan_is_staged_and_overlapped() {
        let p = plan_sort(SortStructure::Buffered, ChunkSortStyle::Serial, 10, 4);
        let q = plan_sort(SortStructure::Staged, ChunkSortStyle::Serial, 10, 4);
        assert!(p.overlapped);
        assert_eq!(p.phases, q.phases);
    }

    #[test]
    fn sequential_lowering_is_one_node_per_phase_in_order() {
        for structure in [
            SortStructure::Whole,
            SortStructure::Staged,
            SortStructure::InPlace,
        ] {
            let p = plan_sort(structure, ChunkSortStyle::Serial, 10, 4);
            let w = p.to_workload_plan();
            w.validate().unwrap();
            assert_eq!(w.family, "sort");
            assert_eq!(w.nodes.len(), p.phases.len(), "{structure:?}");
            // Strictly sequential: every node Seq-chains its predecessor,
            // so waves degenerate to one node each.
            assert!(
                crate::plan::waves(&w).iter().all(|wave| wave.len() == 1),
                "{structure:?}"
            );
            for (node, phase) in w.nodes.iter().zip(&p.phases) {
                let expect = match phase {
                    SortPhase::StageIn { .. } => (PlanKind::StageIn, None),
                    SortPhase::ChunkSort { .. } => (PlanKind::Kernel, Some(SORT_KERNEL_CHUNK_SORT)),
                    SortPhase::MergeRuns { .. } => {
                        (PlanKind::StageOut, Some(SORT_KERNEL_MERGE_RUNS))
                    }
                    SortPhase::CopyBack { .. } => (PlanKind::StageOut, None),
                    SortPhase::ThreadSort { .. } => {
                        (PlanKind::Kernel, Some(SORT_KERNEL_THREAD_SORT))
                    }
                    SortPhase::ThreadMerge { .. } => {
                        (PlanKind::Kernel, Some(SORT_KERNEL_THREAD_MERGE))
                    }
                    SortPhase::FinalMerge { .. } => {
                        (PlanKind::Kernel, Some(SORT_KERNEL_FINAL_MERGE))
                    }
                    SortPhase::FinalCopyBack { .. } => (PlanKind::StageOut, None),
                };
                assert_eq!((node.kind, node.kernel), expect, "{structure:?} {phase:?}");
            }
        }
    }

    #[test]
    fn whole_lowering_is_all_global_nodes() {
        let w = plan_sort(SortStructure::Whole, ChunkSortStyle::Gnu, 100, 7).to_workload_plan();
        assert!(w.nodes.iter().all(|n| n.chunk.is_none()));
        assert_eq!(w.nodes.len(), 3);
    }

    #[test]
    fn buffered_lowering_overlaps_prefetch_with_compute() {
        let p = plan_sort(SortStructure::Buffered, ChunkSortStyle::Serial, 16, 4);
        let w = p.to_workload_plan();
        w.validate().unwrap();
        assert_eq!(w.ring_slots, 2);

        // Covers the same work as the sequential lowering: per megachunk
        // one stage-in, one chunk-sort, one merge-out, plus the final pair.
        let mut pairs: Vec<(PlanKind, Option<usize>)> =
            w.nodes.iter().map(|n| (n.kind, n.chunk)).collect();
        let mut expect: Vec<(PlanKind, Option<usize>)> = (0..4)
            .flat_map(|m| {
                [
                    (PlanKind::StageIn, Some(m)),
                    (PlanKind::Kernel, Some(m)),
                    (PlanKind::StageOut, Some(m)),
                ]
            })
            .chain([(PlanKind::Kernel, None), (PlanKind::StageOut, None)])
            .collect();
        pairs.sort_by_key(|(k, c)| (*c, *k as usize));
        expect.sort_by_key(|(k, c)| (*c, *k as usize));
        assert_eq!(pairs, expect);

        // Stage-in of megachunk m >= 2 recycles the buffer megachunk
        // m - 2's merge-out freed.
        for m in 2..4 {
            let si = w.find(PlanKind::StageIn, m).unwrap();
            assert_eq!(w.nodes[si].deps.len(), 1);
            assert_eq!(w.nodes[si].deps[0].kind, EdgeKind::Recycle);
            assert_eq!(w.nodes[w.nodes[si].deps[0].from].chunk, Some(m - 2));
        }

        // The final merge waits on every megachunk's merge-out.
        let fm = w
            .nodes
            .iter()
            .position(|n| n.kernel == Some(SORT_KERNEL_FINAL_MERGE))
            .unwrap();
        let dep_chunks: Vec<Option<usize>> = w.nodes[fm]
            .deps
            .iter()
            .map(|e| w.nodes[e.from].chunk)
            .collect();
        assert_eq!(dep_chunks, vec![Some(0), Some(1), Some(2), Some(3)]);

        // And waves genuinely overlap: megachunk 1's prefetch shares a
        // wave with megachunk 0's sort.
        let waves = crate::plan::waves(&w);
        let k0 = w.find(PlanKind::Kernel, 0).unwrap();
        let si1 = w.find(PlanKind::StageIn, 1).unwrap();
        assert!(
            waves
                .iter()
                .any(|wave| wave.contains(&k0) && wave.contains(&si1)),
            "{waves:?}"
        );
    }

    #[test]
    fn single_megachunk_buffered_lowering_has_no_final_pair() {
        let w = plan_sort(SortStructure::Buffered, ChunkSortStyle::Serial, 4, 8).to_workload_plan();
        w.validate().unwrap();
        assert_eq!(w.nodes.len(), 3);
        assert!(w.nodes.iter().all(|n| n.chunk == Some(0)));
    }
}
