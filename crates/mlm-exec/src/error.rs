//! Structured errors for the orchestrator.
//!
//! [`drive`](crate::drive) used to signal every failure as a bare `String`
//! and to `panic!` (via `.expect`) when its own bookkeeping looked
//! inconsistent mid-walk. Panics are the wrong surface for a fuzzing
//! backend: a seed that provokes a protocol violation should come back as
//! a value the harness can attach to the seed and shrink, not abort the
//! process. [`DriveError`] is that value.
//!
//! What stays a panic (deliberately): violations of *spec-validated*
//! invariants inside backends — e.g. the lockstep host's "at most one
//! action per ring slot per step", which `drive` guarantees for every spec
//! that passes [`PipelineSpec::validate`](crate::PipelineSpec::validate).
//! Those cannot be provoked by a misbehaving backend, only by a bug in the
//! orchestrator itself, and a loud abort is the honest report.

use std::fmt;

use crate::backend::Stage;
use crate::placement::{Capabilities, Placement};

/// A failure while driving the chunk schedule over a backend.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveError {
    /// The spec failed [`validate`](crate::PipelineSpec::validate); no work
    /// was issued.
    Spec(String),
    /// The backend cannot execute the spec's placement; no work was issued.
    Capability {
        /// The placement the spec asked for.
        placement: Placement,
        /// What the backend offers.
        capabilities: Capabilities,
    },
    /// The orchestrator's dependency bookkeeping was violated mid-walk: an
    /// action needed a token that was never produced. With a conforming
    /// backend this is unreachable; a fuzzing or otherwise misbehaving
    /// backend surfaces here instead of panicking.
    Protocol {
        /// The stage whose dependency was missing.
        op: Stage,
        /// The chunk the missing token belongs to.
        chunk: usize,
        /// What was expected and was not there.
        detail: String,
    },
    /// The backend's own `finish` failed (e.g. a simulated deadlock, a
    /// poisoned buffer ring, or a fuzzing backend reporting a finding).
    Backend(String),
    /// The static schedule verifier ([`crate::graph`]) refused the
    /// emitted graph before any work ran: a race, deadlock, or capacity
    /// finding with its counterexample trace, rendered.
    Verification(String),
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Spec(msg) => write!(f, "invalid spec: {msg}"),
            DriveError::Capability {
                placement,
                capabilities,
            } => write!(
                f,
                "backend cannot execute {placement:?} placement (capabilities {capabilities:?})"
            ),
            DriveError::Protocol { op, chunk, detail } => write!(
                f,
                "schedule protocol violation at {op:?} of chunk {chunk}: {detail}"
            ),
            DriveError::Backend(msg) => write!(f, "backend failed: {msg}"),
            DriveError::Verification(msg) => {
                write!(f, "schedule rejected by static verification: {msg}")
            }
        }
    }
}

impl std::error::Error for DriveError {}

// The pre-DriveError signature was `Result<(), String>`; adapters that
// still speak String errors (`build_program`, `?` in Result<_, String>
// functions) convert losslessly through Display.
impl From<DriveError> for String {
    fn from(e: DriveError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = DriveError::Protocol {
            op: Stage::CopyIn,
            chunk: 7,
            detail: "copy-out of chunk 4 never produced a token".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("CopyIn") && s.contains("chunk 7") && s.contains("chunk 4"),
            "{s}"
        );
        let as_string: String = e.into();
        assert!(as_string.contains("protocol violation"));
    }

    #[test]
    fn capability_error_names_both_sides() {
        let e = DriveError::Capability {
            placement: Placement::Hbw,
            capabilities: Capabilities::cache_mode(),
        };
        let s = e.to_string();
        assert!(s.contains("Hbw"), "{s}");
    }

    /// Every variant must render its payload and survive the
    /// `From<DriveError> for String` round-trip unchanged — the adapter
    /// path callers still speaking `Result<_, String>` depend on.
    #[test]
    fn every_variant_displays_and_round_trips() {
        let variants = [
            DriveError::Spec("chunk_bytes must be positive".into()),
            DriveError::Capability {
                placement: Placement::Implicit,
                capabilities: Capabilities::cache_mode(),
            },
            DriveError::Protocol {
                op: Stage::CopyOut,
                chunk: 3,
                detail: "compute never produced a token".into(),
            },
            DriveError::Backend("pool refused the task".into()),
            DriveError::Verification("[G001] ring slot 0 race".into()),
        ];
        let prefixes = [
            "invalid spec:",
            "backend cannot execute",
            "schedule protocol violation at",
            "backend failed:",
            "schedule rejected by static verification:",
        ];
        let payloads = [
            "chunk_bytes",
            "Implicit",
            "compute never produced",
            "pool refused",
            "G001",
        ];
        for ((e, prefix), payload) in variants.iter().zip(prefixes).zip(payloads) {
            let s = e.to_string();
            assert!(s.starts_with(prefix), "{s:?} should start with {prefix:?}");
            assert!(s.contains(payload), "{s:?} should carry {payload:?}");
            let as_string: String = e.clone().into();
            assert_eq!(as_string, s, "From<DriveError> for String goes via Display");
        }
    }
}
