//! Schedule fuzzing: drive the orchestrator with seed-controlled
//! adversarial execution orders and check the outcome against ground
//! truth.
//!
//! `mlm-verify`'s model checker proves hand-built *models* of the ring and
//! condvar protocols; this module closes the model-vs-code gap from the
//! other side by executing the *actual* schedule [`crate::drive`] issues —
//! every dependency token, barrier, and ring-slot assignment — under
//! adversarial interleavings (see DESIGN.md S21):
//!
//! * [`FuzzBackend`] implements [`Backend`], records the full dependency
//!   graph the orchestrator issues (as a [`DepGraph`], the representation
//!   shared with the static analyzer in [`crate::graph`]), and at `finish`
//!   executes it with a deterministic PRNG choosing which ready node runs
//!   next — reordering ready dependency tokens, delaying and batching
//!   completions, and perturbing `step_barrier` interleavings. Seed in,
//!   trace out: the same seed always replays the same schedule.
//! * The chunk-granular ring model is [`SlotModel`] (one value per chunk,
//!   a [`RING_SLOTS`]-slot phase machine), also shared with the analyzer:
//!   copy-in requires a free slot, compute a loaded one, copy-out a
//!   computed one, and final outputs must be bit-identical to the
//!   lockstep/NullBackend ground truth (the natural-order walk of the
//!   very same graph, which [`ground_truth`] computes in closed form).
//! * [`FaultPlan`] injects backend misbehaviour — a kernel panic
//!   poisoning its slot mid-ring, a completion reported twice, a
//!   completion never reported — and the checker must either drain
//!   cleanly (poison) or call the violation ([`Violation`]). Fault
//!   entries are validated against the recorded graph: addressing a
//!   `(stage, chunk)` the schedule never issues is a
//!   [`DriveError::Spec`], not a silent no-op.
//! * [`Construction`] selects deliberately-broken executor disciplines —
//!   mirrors of mlm-verify's four must-fail regression models plus the
//!   stencil family's dropped-halo class; each is a [`Discipline`]
//!   weakening of the dependency edges, which is also how
//!   [`crate::graph::analyze`] flags the same bugs statically. The fuzzer
//!   must find each one's bug ([`Violation`]) within a committed seed.
//! * On a failure, [`shrink`] minimizes the decision trace to a short
//!   replayable `seed + decision list` regression ([`Finding`]).
//!
//! Nothing here runs real threads: the adversarial executor explores the
//! *schedule space* the dependency tokens permit, so a clean fuzz run
//! means the orchestrator's declared dependencies are sufficient — any
//! backend that honours them is race-free at the schedule level.

use std::collections::BTreeSet;
use std::fmt;

use crate::backend::{Backend, ChunkAction, Stage};
use crate::drive::{drive, RING_SLOTS};
use crate::error::DriveError;
use crate::graph::{record_graph, DepGraph, Discipline, GraphNode, SlotError, SlotModel};
use crate::placement::{Capabilities, Placement};
use crate::spec::{PipelineSpec, Workload};

// ---------------------------------------------------------------------------
// Deterministic PRNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, deterministic. Good enough to pick schedule
/// orders; never used for anything cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        scramble(self.0)
    }
}

/// The SplitMix64 output scrambler, reused as the fuzz kernel's mixing
/// function (one "compute pass" over a chunk value).
fn scramble(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The modeled input value of chunk `c` (deterministic, schedule-free).
fn chunk_input(c: usize) -> u64 {
    scramble(0xC0FF_EE00 ^ c as u64)
}

/// The modeled kernel: `compute_passes` scramble rounds over the value.
fn apply_kernel(v: u64, passes: u32) -> u64 {
    (0..passes).fold(v, |acc, _| scramble(acc))
}

/// The modeled stencil combine: fold the two neighbour halo values into
/// the chunk's own before the compute passes. Asymmetric rotations keep
/// it order-sensitive, so reading a stale or missing neighbour (the bug
/// class the halo edges exist to prevent) always changes the output.
fn stencil_mix(left: u64, mid: u64, right: u64) -> u64 {
    scramble(mid ^ left.rotate_left(8) ^ right.rotate_right(8))
}

/// Ground truth for chunk `c` of `spec`: what any correct execution of
/// the schedule must deliver. Identical to walking the graph in natural
/// (issue) order — the lockstep/NullBackend reference — because the
/// kernel model is positional and pure. Stencil chunks fold in both
/// neighbours' inputs (zero sentinels past the boundary) before the
/// compute passes, mirroring the halo reads of the real kernel.
pub fn ground_truth(spec: &PipelineSpec, c: usize) -> u64 {
    match spec.workload {
        Workload::Map => apply_kernel(chunk_input(c), spec.compute_passes),
        Workload::Stencil { .. } => {
            let left = if c > 0 { chunk_input(c - 1) } else { 0 };
            let right = if c + 1 < spec.n_chunks() {
                chunk_input(c + 1)
            } else {
                0
            };
            apply_kernel(
                stencil_mix(left, chunk_input(c), right),
                spec.compute_passes,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Decision tape
// ---------------------------------------------------------------------------

/// Where schedule decisions come from: a seed (recording mode) or a
/// previously recorded decision list (replay / shrinking mode).
#[derive(Debug, Clone)]
pub enum TapeSource {
    /// Decisions drawn from [`SplitMix64`] seeded with the value.
    Seed(u64),
    /// Decisions replayed from the list; past its end the executor picks
    /// index 0 (natural order), so a trace shrinks by truncation.
    Replay(Vec<u32>),
}

/// Seed-or-replay decision stream. Only *free* choices (ready sets larger
/// than one) consume and record a decision, which keeps traces short and
/// stable under shrinking.
#[derive(Debug, Clone)]
struct DecisionTape {
    source: TapeSource,
    rng: SplitMix64,
    pos: usize,
    recorded: Vec<u32>,
}

impl DecisionTape {
    fn new(source: TapeSource) -> Self {
        let rng = match &source {
            TapeSource::Seed(s) => SplitMix64::new(*s),
            TapeSource::Replay(_) => SplitMix64::new(0),
        };
        DecisionTape {
            source,
            rng,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// Pick an index in `0..n`. `n == 1` is forced and recorded nowhere.
    fn next(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        let pick = match &self.source {
            TapeSource::Seed(_) => (self.rng.next_u64() % n as u64) as u32,
            TapeSource::Replay(tape) => {
                let v = tape.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v % n as u32
            }
        };
        self.recorded.push(pick);
        pick as usize
    }
}

// ---------------------------------------------------------------------------
// Fault taxonomy and buggy constructions
// ---------------------------------------------------------------------------

/// Backend misbehaviour to inject into one run. Faults address actions by
/// `(stage, chunk)` so they survive shrinking (node ids shift, schedule
/// positions do not); [`validate_faults`] rejects entries the schedule
/// never issues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The kernel panics while computing this chunk, poisoning its ring
    /// slot. A correct executor must cancel exactly the transitive
    /// dependents and drain everything else ([`Outcome::Poisoned`]).
    pub kernel_panic: Option<usize>,
    /// The backend reports this action's completion twice; the checker
    /// must flag [`Violation::DoubleCompletion`].
    pub double_complete: Option<(Stage, usize)>,
    /// The backend never reports this action's completion; the checker
    /// must flag the resulting [`Violation::Deadlock`].
    pub lost_complete: Option<(Stage, usize)>,
}

impl FaultPlan {
    /// No faults.
    pub const NONE: FaultPlan = FaultPlan {
        kernel_panic: None,
        double_complete: None,
        lost_complete: None,
    };
}

/// Check every fault entry against the recorded schedule graph: a fault
/// addressing a `(stage, chunk)` the schedule never issues would silently
/// never fire, so the run would "pass" without testing anything. The
/// harness surfaces this as [`DriveError::Spec`].
pub fn validate_faults(graph: &DepGraph, faults: &FaultPlan) -> Result<(), String> {
    let check = |what: &str, stage: Stage, chunk: usize| -> Result<(), String> {
        if graph.find_action(stage, chunk).is_none() {
            return Err(format!(
                "{what} fault addresses {stage:?} of chunk {chunk}, \
                 which the schedule never issues"
            ));
        }
        Ok(())
    };
    if let Some(k) = faults.kernel_panic {
        check("kernel_panic", Stage::Compute, k)?;
    }
    if let Some((stage, chunk)) = faults.double_complete {
        check("double_complete", stage, chunk)?;
    }
    if let Some((stage, chunk)) = faults.lost_complete {
        check("lost_complete", stage, chunk)?;
    }
    Ok(())
}

/// Which dependency-tracking discipline the executor uses. `Correct` is
/// the shipped semantics; the others are deliberately broken analogues of
/// must-fail regression models (mlm-verify's four model-checker classes,
/// plus the stencil family's dropped-halo class), re-expressed at the
/// `drive()` schedule level, and exist so committed regression seeds can
/// prove the fuzzer still catches each bug class.
///
/// Each maps to a [`Discipline`] edge weakening via
/// [`Construction::discipline`], which is how the static analyzer flags
/// the same bugs without running a single schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construction {
    /// Honour every dependency edge; poison cancels dependents.
    Correct,
    /// Ignore the copy-out → copy-in buffer-recycling edges — the
    /// schedule-level analogue of the pre-PR-2 PSRS race (running on a
    /// peer's data before the protocol said it was ready). The fuzzer
    /// finds a slot overwritten while still occupied.
    DropRecycleDep,
    /// After a kernel panic, keep scheduling the panicked chunk's
    /// dependents as if the compute had completed — the `PoisonSkipLock`
    /// condvar regression. The fuzzer finds work touching a poisoned slot.
    PoisonSkipLock,
    /// A completion wakes only its *first* dependent; later waiters lose
    /// the wakeup — the `NotifyOne` condvar regression. The fuzzer finds
    /// the resulting deadlock.
    NotifyOne,
    /// A node becomes runnable on its *first* dependency's completion
    /// without rechecking the rest — the `NoRecheck` condvar regression.
    /// The fuzzer finds premature execution breaking the ring.
    NoRecheck,
    /// Ignore the inter-chunk halo edges (neighbour copy-in → compute) a
    /// stencil plan emits: the kernel runs before its neighbour's
    /// boundary bytes landed and folds in stale or missing halo data.
    /// The fuzzer finds the resulting wrong output. A no-op for the map
    /// family, whose plans carry no halo edges.
    DropHaloDep,
}

impl Construction {
    /// Stable name for traces and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Construction::Correct => "correct",
            Construction::DropRecycleDep => "drop-recycle-dep",
            Construction::PoisonSkipLock => "poison-skip-lock",
            Construction::NotifyOne => "notify-one",
            Construction::NoRecheck => "no-recheck",
            Construction::DropHaloDep => "drop-halo-dep",
        }
    }

    /// The edge-weakening this construction applies to the recorded
    /// dependency graph — the shared vocabulary between the adversarial
    /// executor here and the static analyzer in [`crate::graph`].
    pub fn discipline(self) -> Discipline {
        match self {
            Construction::Correct => Discipline::CORRECT,
            Construction::DropRecycleDep => Discipline {
                drop_recycle: true,
                ..Discipline::CORRECT
            },
            Construction::PoisonSkipLock => Discipline {
                poison_skip: true,
                ..Discipline::CORRECT
            },
            Construction::NotifyOne => Discipline {
                notify_one: true,
                ..Discipline::CORRECT
            },
            Construction::NoRecheck => Discipline {
                no_recheck: true,
                ..Discipline::CORRECT
            },
            Construction::DropHaloDep => Discipline {
                drop_halo: true,
                ..Discipline::CORRECT
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Violations and outcomes
// ---------------------------------------------------------------------------

/// An invariant the adversarial execution broke.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An action ran against a ring slot in the wrong phase (overwrite of
    /// a live slot, compute on an unloaded slot, copy-out of stale data).
    SlotClash {
        /// The offending action.
        action: ChunkAction,
        /// Human-readable slot state at the time.
        state: String,
    },
    /// An action ran against a slot poisoned by a kernel panic.
    PoisonTouched {
        /// The offending action.
        action: ChunkAction,
    },
    /// A completion was reported for an already-completed node.
    DoubleCompletion {
        /// Graph node id.
        node: usize,
    },
    /// No node is ready but uncancelled work remains.
    Deadlock {
        /// Number of stuck nodes.
        pending: usize,
        /// The first stuck action, if any (barriers are anonymous).
        first: Option<ChunkAction>,
    },
    /// A chunk's final output differs from ground truth.
    WrongOutput {
        /// Chunk index.
        chunk: usize,
        /// What the execution produced (`None`: never written).
        got: Option<u64>,
        /// The ground-truth value.
        want: u64,
    },
}

impl Violation {
    /// Coarse class used by the shrinker to decide "still the same bug".
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::SlotClash { .. } => "slot-clash",
            Violation::PoisonTouched { .. } => "poison-touched",
            Violation::DoubleCompletion { .. } => "double-completion",
            Violation::Deadlock { .. } => "deadlock",
            Violation::WrongOutput { .. } => "wrong-output",
        }
    }

    fn from_slot_error(e: SlotError) -> Violation {
        match e {
            SlotError::Clash { action, state } => Violation::SlotClash { action, state },
            SlotError::Poisoned { action } => Violation::PoisonTouched { action },
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SlotClash { action, state } => write!(
                f,
                "{:?} of chunk {} hit slot {} in state {state}",
                action.stage, action.chunk, action.slot
            ),
            Violation::PoisonTouched { action } => write!(
                f,
                "{:?} of chunk {} touched a poisoned slot {}",
                action.stage, action.chunk, action.slot
            ),
            Violation::DoubleCompletion { node } => {
                write!(f, "node {node} completed twice")
            }
            Violation::Deadlock { pending, first } => match first {
                Some(a) => write!(
                    f,
                    "deadlock: {pending} nodes stuck, first is {:?} of chunk {}",
                    a.stage, a.chunk
                ),
                None => write!(f, "deadlock: {pending} nodes stuck"),
            },
            Violation::WrongOutput { chunk, got, want } => write!(
                f,
                "chunk {chunk} output {got:?} != ground truth {want:#018x}"
            ),
        }
    }
}

/// How one fuzzed execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every node completed and every chunk's output is bit-identical to
    /// ground truth.
    Ok,
    /// An injected kernel panic drained cleanly: its transitive
    /// dependents (and only those) were cancelled, everything else
    /// completed, and every completed copy-out wrote the right bits.
    Poisoned {
        /// The chunk whose kernel panicked.
        chunk: usize,
        /// Nodes cancelled by the poison.
        cancelled: usize,
    },
    /// An invariant broke.
    Violation(Violation),
}

impl Outcome {
    /// The violation, if this outcome is one.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Outcome::Violation(v) => Some(v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The fuzzing backend
// ---------------------------------------------------------------------------

/// One case the fuzzer exercises: a spec plus the executor discipline and
/// fault plan to run it under.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Display name (goes into findings).
    pub name: String,
    /// The schedule to fuzz.
    pub spec: PipelineSpec,
    /// Executor discipline ([`Construction::Correct`] for real fuzzing;
    /// a buggy variant for regression seeds).
    pub construction: Construction,
    /// Injected backend misbehaviour.
    pub faults: FaultPlan,
}

impl FuzzCase {
    /// A correct, fault-free case over `spec`.
    pub fn clean(name: impl Into<String>, spec: PipelineSpec) -> Self {
        FuzzCase {
            name: name.into(),
            spec,
            construction: Construction::Correct,
            faults: FaultPlan::NONE,
        }
    }
}

/// The fuzzing [`Backend`]: records the dependency graph the orchestrator
/// issues (as the shared [`DepGraph`]), then executes it adversarially at
/// `finish`.
///
/// `drive(&mut FuzzBackend::new(..), &spec)` returns
/// `Err(DriveError::Backend(..))` exactly when the adversarial execution
/// found a violation; [`FuzzBackend::into_run`] yields the structured
/// outcome and the recorded decision trace either way.
pub struct FuzzBackend {
    case: FuzzCase,
    tape: DecisionTape,
    graph: DepGraph,
    outcome: Option<Outcome>,
}

impl FuzzBackend {
    /// A backend for `case`, drawing schedule decisions from `source`.
    pub fn new(case: FuzzCase, source: TapeSource) -> Self {
        FuzzBackend {
            case,
            tape: DecisionTape::new(source),
            graph: DepGraph::new(),
            outcome: None,
        }
    }

    /// The outcome and recorded decision trace of the finished run.
    ///
    /// # Panics
    /// Panics if the backend was never driven to `finish`.
    pub fn into_run(self) -> FuzzRun {
        FuzzRun {
            outcome: self.outcome.expect("drive() reached finish"),
            decisions: self.tape.recorded,
        }
    }
}

/// The result of one fuzzed execution: the outcome plus the decision
/// trace that reproduces it via [`TapeSource::Replay`].
#[derive(Debug, Clone)]
pub struct FuzzRun {
    /// How the execution ended.
    pub outcome: Outcome,
    /// Every free schedule decision taken, in order.
    pub decisions: Vec<u32>,
}

impl Backend for FuzzBackend {
    type Token = usize;

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, deps: &[usize]) -> usize {
        self.graph.push(GraphNode::Action(action), deps.to_vec())
    }

    fn step_barrier(&mut self, _spec: &PipelineSpec, after: &[usize]) -> usize {
        self.graph.push(GraphNode::Barrier, after.to_vec())
    }

    fn finish(&mut self, spec: &PipelineSpec) -> Result<(), String> {
        let outcome = Executor::new(&self.graph, spec, &self.case).run(&mut self.tape);
        let result = match &outcome {
            Outcome::Violation(v) => Err(format!("fuzz violation ({}): {v}", v.kind())),
            _ => Ok(()),
        };
        self.outcome = Some(outcome);
        result
    }
}

// ---------------------------------------------------------------------------
// The adversarial executor
// ---------------------------------------------------------------------------

/// The value model for the stencil family's split per-slot buffers.
///
/// Unlike the map family's [`SlotModel`] phase machine, this model is
/// deliberately *permissive*: loads overwrite whatever is resident and
/// computes read whatever the three in-slots currently hold. A schedule
/// that violates the halo or recycling edges therefore doesn't trip an
/// immediate clash — it silently folds stale (or missing) neighbour data
/// into the output, which the end-of-run ground-truth comparison flags as
/// [`Violation::WrongOutput`]. That is exactly the failure mode a real
/// stencil kernel has: no fault, just wrong boundary bytes.
struct StencilModel {
    /// `(resident chunk, staged input value)` per in-buffer slot.
    in_slots: Vec<Option<(usize, u64)>>,
    /// `(computed chunk, output value)` per out-buffer slot.
    out_slots: Vec<Option<(usize, u64)>>,
}

impl StencilModel {
    fn new(slots: usize) -> Self {
        StencilModel {
            in_slots: vec![None; slots],
            out_slots: vec![None; slots],
        }
    }

    /// The value a compute of `chunk` reads for neighbour offset
    /// `delta` ∈ {-1, 0, +1}: whatever its ring slot holds right now,
    /// the zero sentinel past the boundary, or zero when nothing landed.
    fn halo_read(&self, chunk: usize, delta: i64, n_chunks: usize) -> u64 {
        let Some(c) = chunk
            .checked_add_signed(delta as isize)
            .filter(|&c| c < n_chunks)
        else {
            return 0;
        };
        self.in_slots[c % self.in_slots.len()]
            .map(|(_, v)| v)
            .unwrap_or(0)
    }
}

struct Executor<'a> {
    graph: &'a DepGraph,
    spec: &'a PipelineSpec,
    case: &'a FuzzCase,
    disc: Discipline,
    dependents: Vec<Vec<usize>>,
    remaining: Vec<usize>,
    completed: Vec<bool>,
    executed: Vec<bool>,
    cancelled: Vec<bool>,
    notified: Vec<bool>,
    ready: BTreeSet<usize>,
    ring: SlotModel,
    stencil: Option<StencilModel>,
    output: Vec<Option<u64>>,
    poisoned_chunk: Option<usize>,
}

impl<'a> Executor<'a> {
    fn new(graph: &'a DepGraph, spec: &'a PipelineSpec, case: &'a FuzzCase) -> Self {
        let n = graph.len();
        let disc = case.construction.discipline();
        // Build the effective edge set: the discipline's drop_recycle
        // weakening erases exactly the buffer-recycling edges, drop_halo
        // the inter-chunk halo edges.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining = vec![0usize; n];
        for (i, rem) in remaining.iter_mut().enumerate() {
            for &d in graph.deps(i) {
                let dropped = (disc.drop_recycle && graph.is_recycle_edge(i, d))
                    || (disc.drop_halo && graph.is_halo_edge(i, d));
                if !dropped {
                    dependents[d].push(i);
                    *rem += 1;
                }
            }
        }
        let ready: BTreeSet<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let stencil = matches!(spec.workload, Workload::Stencil { .. })
            .then(|| StencilModel::new(spec.ring_slots()));
        Executor {
            graph,
            spec,
            case,
            disc,
            dependents,
            remaining,
            completed: vec![false; n],
            executed: vec![false; n],
            cancelled: vec![false; n],
            notified: vec![false; n],
            ready,
            ring: SlotModel::new(RING_SLOTS),
            stencil,
            output: vec![None; spec.n_chunks()],
            poisoned_chunk: None,
        }
    }

    fn run(mut self, tape: &mut DecisionTape) -> Outcome {
        loop {
            if self.ready.is_empty() {
                let pending: Vec<usize> = (0..self.graph.len())
                    .filter(|&i| !self.executed[i] && !self.cancelled[i])
                    .collect();
                if pending.is_empty() {
                    return self.finish();
                }
                return Outcome::Violation(Violation::Deadlock {
                    pending: pending.len(),
                    first: pending.iter().find_map(|&i| self.graph.action(i)),
                });
            }

            // The adversarial choice: which ready node runs next.
            let pick = tape.next(self.ready.len());
            let node = *self.ready.iter().nth(pick).expect("pick < len");
            self.ready.remove(&node);
            self.executed[node] = true;

            let mut panicked = false;
            if let Some(a) = self.graph.action(node) {
                match self.apply(a) {
                    Ok(p) => panicked = p,
                    Err(v) => return Outcome::Violation(v),
                }
            }

            if panicked {
                // The poison_skip discipline pretends the panicked compute
                // completed normally; everything else cancels the
                // transitive dependents (the poison-drain contract).
                if self.disc.poison_skip {
                    if let Err(v) = self.complete(node) {
                        return Outcome::Violation(v);
                    }
                } else {
                    self.cancel_dependents(node);
                }
                continue;
            }

            let fault_here = |f: Option<(Stage, usize)>| {
                matches!(
                    (f, self.graph.action(node)),
                    (Some((stage, chunk)), Some(a))
                        if a.stage == stage && a.chunk == chunk
                )
            };

            if fault_here(self.case.faults.lost_complete) {
                // The completion is never reported: dependents starve.
                continue;
            }
            if let Err(v) = self.complete(node) {
                return Outcome::Violation(v);
            }
            if fault_here(self.case.faults.double_complete) {
                if let Err(v) = self.complete(node) {
                    return Outcome::Violation(v);
                }
            }
        }
    }

    /// Apply one action to the ring/output model. `Ok(true)` means the
    /// kernel panicked (fault injection); `Err` is a violation.
    fn apply(&mut self, a: ChunkAction) -> Result<bool, Violation> {
        if self.spec.placement == Placement::Implicit {
            // No ring in implicit mode: compute touches the data in place.
            debug_assert_eq!(a.stage, Stage::Compute);
            if self.case.faults.kernel_panic == Some(a.chunk) {
                self.poisoned_chunk = Some(a.chunk);
                return Ok(true);
            }
            self.output[a.chunk] = Some(ground_truth(self.spec, a.chunk));
            return Ok(false);
        }
        let panic_here =
            a.stage == Stage::Compute && self.case.faults.kernel_panic == Some(a.chunk);
        if let Some(model) = &mut self.stencil {
            // Permissive split-buffer model: violations surface as wrong
            // outputs at finish, not as immediate clashes (see
            // [`StencilModel`]).
            match a.stage {
                Stage::CopyIn => {
                    model.in_slots[a.slot] = Some((a.chunk, chunk_input(a.chunk)));
                }
                Stage::Compute if panic_here => {
                    model.out_slots[a.slot] = None;
                    self.poisoned_chunk = Some(a.chunk);
                    return Ok(true);
                }
                Stage::Compute => {
                    let n = self.spec.n_chunks();
                    let mixed = stencil_mix(
                        model.halo_read(a.chunk, -1, n),
                        model.halo_read(a.chunk, 0, n),
                        model.halo_read(a.chunk, 1, n),
                    );
                    model.out_slots[a.slot] =
                        Some((a.chunk, apply_kernel(mixed, self.spec.compute_passes)));
                }
                Stage::CopyOut => {
                    if let Some((_, v)) = model.out_slots[a.slot].take() {
                        self.output[a.chunk] = Some(v);
                    }
                }
            }
            return Ok(false);
        }
        let result = match a.stage {
            Stage::CopyIn => self.ring.load(a, chunk_input(a.chunk)).map(|()| false),
            Stage::Compute if panic_here => self.ring.poison(a).map(|()| {
                self.poisoned_chunk = Some(a.chunk);
                true
            }),
            Stage::Compute => self
                .ring
                .compute(a, |v| apply_kernel(v, self.spec.compute_passes))
                .map(|()| false),
            Stage::CopyOut => self.ring.drain(a).map(|v| {
                self.output[a.chunk] = Some(v);
                false
            }),
        };
        result.map_err(Violation::from_slot_error)
    }

    /// Report `node` complete, waking dependents per the discipline.
    fn complete(&mut self, node: usize) -> Result<(), Violation> {
        if self.completed[node] {
            return Err(Violation::DoubleCompletion { node });
        }
        self.completed[node] = true;
        for (k, &d) in self.dependents[node].iter().enumerate() {
            if self.cancelled[d] || self.executed[d] {
                continue;
            }
            // notify_one: only the first dependent hears the completion.
            if self.disc.notify_one && k > 0 {
                continue;
            }
            self.remaining[d] -= 1;
            // no_recheck: the first notification makes the node runnable,
            // remaining dependencies unchecked.
            let wake = if self.disc.no_recheck {
                !self.notified[d]
            } else {
                self.remaining[d] == 0
            };
            self.notified[d] = true;
            if wake {
                self.ready.insert(d);
            }
        }
        Ok(())
    }

    /// Cancel everything transitively depending on `node` (the clean
    /// poison-drain semantics).
    fn cancel_dependents(&mut self, node: usize) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            for &d in &self.dependents[n] {
                if !self.cancelled[d] && !self.executed[d] {
                    self.cancelled[d] = true;
                    self.ready.remove(&d);
                    stack.push(d);
                }
            }
        }
    }

    /// End-of-run verdict once no work is left.
    fn finish(self) -> Outcome {
        if let Some(chunk) = self.poisoned_chunk {
            // Clean poison-drain: completed copy-outs still wrote the
            // right bits, and nothing cancelled ever ran.
            for (c, got) in self.output.iter().enumerate() {
                if let Some(v) = got {
                    if *v != ground_truth(self.spec, c) {
                        return Outcome::Violation(Violation::WrongOutput {
                            chunk: c,
                            got: Some(*v),
                            want: ground_truth(self.spec, c),
                        });
                    }
                }
            }
            let cancelled = self.cancelled.iter().filter(|&&c| c).count();
            return Outcome::Poisoned { chunk, cancelled };
        }
        for (c, got) in self.output.iter().enumerate() {
            let want = ground_truth(self.spec, c);
            if *got != Some(want) {
                return Outcome::Violation(Violation::WrongOutput {
                    chunk: c,
                    got: *got,
                    want,
                });
            }
        }
        Outcome::Ok
    }
}

// ---------------------------------------------------------------------------
// Harness: seeded runs, corpus sweeps, shrinking
// ---------------------------------------------------------------------------

/// Run `case` once with decisions from `source`.
///
/// Errors are real harness misuse: an undriveable spec or a [`FaultPlan`]
/// addressing an action the schedule never issues (both
/// [`DriveError::Spec`]). Violations the adversarial execution finds are
/// *not* errors here — they come back in [`FuzzRun::outcome`].
pub fn run_case(case: &FuzzCase, source: TapeSource) -> Result<FuzzRun, DriveError> {
    if case.faults != FaultPlan::NONE {
        let graph = record_graph(&case.spec)?;
        validate_faults(&graph, &case.faults).map_err(DriveError::Spec)?;
    }
    let mut backend = FuzzBackend::new(case.clone(), source);
    match drive(&mut backend, &case.spec) {
        Ok(()) | Err(DriveError::Backend(_)) => Ok(backend.into_run()),
        Err(e) => Err(e),
    }
}

/// Run `case` once with the seeded adversarial schedule.
pub fn fuzz_seed(case: &FuzzCase, seed: u64) -> Result<FuzzRun, DriveError> {
    run_case(case, TapeSource::Seed(seed))
}

/// Replay a recorded (possibly shrunk) decision trace.
pub fn replay(case: &FuzzCase, trace: &[u32]) -> Result<FuzzRun, DriveError> {
    run_case(case, TapeSource::Replay(trace.to_vec()))
}

/// A reproducible fuzz failure: the seed that found it, the shrunk
/// decision trace that replays it, and the violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The fuzz case the failure occurred in.
    pub case_name: String,
    /// Seed whose schedule first exposed the violation.
    pub seed: u64,
    /// Minimized decision list; replay with [`TapeSource::Replay`].
    pub shrunk: Vec<u32>,
    /// The (re-confirmed, post-shrink) violation.
    pub violation: Violation,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fuzz finding in {}: seed={}", self.case_name, self.seed)?;
        writeln!(f, "  violation: {}", self.violation)?;
        write!(
            f,
            "  shrunk trace ({} decisions): {:?}",
            self.shrunk.len(),
            self.shrunk
        )
    }
}

/// Minimize a failing decision trace: find a shorter/lower trace whose
/// replay still produces a violation of the same kind. Deterministic and
/// greedy — truncation passes (replay past the trace end picks natural
/// order) followed by pointwise lowering toward 0, iterated to a fixed
/// point.
pub fn shrink(case: &FuzzCase, initial: &[u32], kind: &'static str) -> Vec<u32> {
    let fails = |t: &[u32]| {
        replay(case, t).is_ok_and(|run| run.outcome.violation().is_some_and(|v| v.kind() == kind))
    };
    let trim = |t: &mut Vec<u32>| {
        while t.last() == Some(&0) {
            t.pop();
        }
    };
    let mut best = initial.to_vec();
    trim(&mut best);
    loop {
        let before = best.clone();
        // Truncation: cut ever-smaller tails while the bug survives.
        let mut cut = best.len().max(1);
        while cut > 0 {
            while best.len() >= cut {
                let candidate = &best[..best.len() - cut];
                if fails(candidate) {
                    best.truncate(best.len() - cut);
                } else {
                    break;
                }
            }
            cut /= 2;
        }
        // Pointwise lowering: try 0, then halves, for each decision.
        for i in 0..best.len() {
            for v in [0, best[i] / 2] {
                if v < best[i] {
                    let mut t = best.clone();
                    t[i] = v;
                    if fails(&t) {
                        best = t;
                    }
                }
            }
        }
        trim(&mut best);
        if best == before {
            break;
        }
    }
    best
}

/// Fuzz one case over `seeds` consecutive seeds starting at `base`;
/// violations come back shrunk. `Err` means the case itself is broken
/// (undriveable spec or a fault plan addressing nonexistent work).
pub fn fuzz_case(case: &FuzzCase, base: u64, seeds: u64) -> Result<Vec<Finding>, DriveError> {
    let mut findings = Vec::new();
    for seed in base..base + seeds {
        let run = fuzz_seed(case, seed)?;
        if let Outcome::Violation(v) = run.outcome {
            let shrunk = shrink(case, &run.decisions, v.kind());
            let confirmed = replay(case, &shrunk)?
                .outcome
                .violation()
                .cloned()
                .unwrap_or(v);
            findings.push(Finding {
                case_name: case.name.clone(),
                seed,
                shrunk,
                violation: confirmed,
            });
        }
    }
    Ok(findings)
}

/// The default corpus: every placement/schedule mode the orchestrator
/// emits, at several chunk counts including single-chunk and ragged
/// tails — for both workload families (the stencil rows exercise the
/// halo-edge geometries on the four-slot ring, including the ragged
/// tail, whose last chunk still spans a full halo). All cases are
/// [`Construction::Correct`] and fault-free; any finding is a real
/// orchestrator bug.
pub fn default_corpus() -> Vec<FuzzCase> {
    let mut cases = Vec::new();
    let geometries: &[(u64, &str)] = &[
        (64, "1"),
        (128, "2"),
        (256, "4"),
        (240, "4-ragged"),
        (448, "7"),
    ];
    let modes: &[(Placement, bool, &str)] = &[
        (Placement::Hbw, true, "hbw-lockstep"),
        (Placement::Hbw, false, "hbw-dataflow"),
        (Placement::Ddr, true, "ddr-lockstep"),
        (Placement::Ddr, false, "ddr-dataflow"),
        (Placement::Implicit, true, "implicit"),
    ];
    for &(placement, lockstep, mode) in modes {
        for &(total, geom) in geometries {
            cases.push(FuzzCase::clean(
                format!("{mode}-{geom}"),
                corpus_spec(total, placement, lockstep),
            ));
        }
    }
    for &(lockstep, mode) in &[(true, "stencil-lockstep"), (false, "stencil-dataflow")] {
        for &(total, geom) in geometries {
            cases.push(FuzzCase::clean(
                format!("{mode}-{geom}"),
                corpus_stencil_spec(total, lockstep),
            ));
        }
    }
    cases
}

/// A small, fast spec for fuzzing: 64-byte chunks, minimal pools. The
/// fuzzer explores schedule structure, so byte-level scale adds nothing.
pub fn corpus_spec(total_bytes: u64, placement: Placement, lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        total_bytes,
        chunk_bytes: 64,
        p_in: 1,
        p_out: 1,
        p_comp: 2,
        compute_passes: 2,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    }
}

/// The stencil-family counterpart of [`corpus_spec`]: HBW placement,
/// 64-byte chunks with a 16-byte halo on each side (so the ragged
/// 240-byte geometry's 48-byte tail still spans a full halo).
pub fn corpus_stencil_spec(total_bytes: u64, lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        workload: Workload::Stencil { halo_bytes: 16 },
        ..corpus_spec(total_bytes, Placement::Hbw, lockstep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataflow_case() -> FuzzCase {
        FuzzCase::clean("hbw-dataflow-7", corpus_spec(448, Placement::Hbw, false))
    }

    fn lockstep_case() -> FuzzCase {
        FuzzCase::clean("hbw-lockstep-4", corpus_spec(256, Placement::Hbw, true))
    }

    #[test]
    fn natural_order_matches_ground_truth() {
        for case in default_corpus() {
            let run = replay(&case, &[]).unwrap();
            assert_eq!(run.outcome, Outcome::Ok, "{}", case.name);
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let case = dataflow_case();
        let a = fuzz_seed(&case, 7).unwrap();
        let b = fuzz_seed(&case, 7).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn recorded_decisions_replay_identically() {
        let case = dataflow_case();
        for seed in 0..20 {
            let run = fuzz_seed(&case, seed).unwrap();
            let again = replay(&case, &run.decisions).unwrap();
            assert_eq!(run.outcome, again.outcome, "seed {seed}");
        }
    }

    #[test]
    fn correct_construction_survives_many_seeds() {
        for case in [dataflow_case(), lockstep_case()] {
            for seed in 0..200 {
                let run = fuzz_seed(&case, seed).unwrap();
                assert_eq!(run.outcome, Outcome::Ok, "{} seed {seed}", case.name);
            }
        }
    }

    #[test]
    fn drive_surfaces_violations_as_backend_errors() {
        let mut case = dataflow_case();
        case.construction = Construction::DropRecycleDep;
        // Some seed in a small budget must expose the dropped edge.
        let found = (0..200).find_map(|seed| {
            let mut b = FuzzBackend::new(case.clone(), TapeSource::Seed(seed));
            match drive(&mut b, &case.spec) {
                Err(DriveError::Backend(msg)) => Some(msg),
                _ => None,
            }
        });
        let msg = found.expect("dropped recycling edge must be caught");
        assert!(msg.contains("fuzz violation"), "{msg}");
    }

    #[test]
    fn kernel_panic_drains_cleanly() {
        let mut case = dataflow_case();
        case.faults.kernel_panic = Some(2);
        for seed in 0..100 {
            let run = fuzz_seed(&case, seed).unwrap();
            match run.outcome {
                Outcome::Poisoned {
                    chunk: 2,
                    cancelled,
                } => {
                    assert!(cancelled > 0, "poison cancels downstream work");
                }
                other => panic!("seed {seed}: expected clean poison-drain, got {other:?}"),
            }
        }
    }

    #[test]
    fn double_completion_is_detected() {
        let mut case = lockstep_case();
        case.faults.double_complete = Some((Stage::Compute, 1));
        let run = fuzz_seed(&case, 0).unwrap();
        assert_eq!(
            run.outcome.violation().map(Violation::kind),
            Some("double-completion")
        );
    }

    #[test]
    fn lost_completion_deadlocks() {
        let mut case = dataflow_case();
        case.faults.lost_complete = Some((Stage::CopyIn, 0));
        let run = fuzz_seed(&case, 0).unwrap();
        assert_eq!(
            run.outcome.violation().map(Violation::kind),
            Some("deadlock")
        );
    }

    #[test]
    fn fault_plan_must_address_a_real_action() {
        // Chunk 99 does not exist in a 7-chunk schedule: previously a
        // silent no-op (the run "passed" without testing anything), now a
        // spec error.
        let mut case = dataflow_case();
        case.faults.kernel_panic = Some(99);
        let err = fuzz_seed(&case, 0).unwrap_err();
        assert!(
            matches!(&err, DriveError::Spec(msg) if msg.contains("chunk 99")),
            "{err}"
        );
        // Same for completion faults.
        let mut case = lockstep_case();
        case.faults.lost_complete = Some((Stage::CopyOut, 77));
        assert!(matches!(fuzz_seed(&case, 0), Err(DriveError::Spec(_))));
        // Implicit schedules issue no copies at all.
        let mut case = FuzzCase::clean("implicit-2", corpus_spec(128, Placement::Implicit, true));
        case.faults.double_complete = Some((Stage::CopyIn, 0));
        assert!(matches!(fuzz_seed(&case, 0), Err(DriveError::Spec(_))));
    }

    #[test]
    fn shrinker_minimizes_and_preserves_the_bug() {
        let mut case = dataflow_case();
        case.construction = Construction::DropRecycleDep;
        let finding = (0..500)
            .flat_map(|seed| fuzz_case(&case, seed, 1).unwrap())
            .next()
            .expect("bug must be found");
        assert!(
            finding.shrunk.len() <= 20,
            "shrunk trace too long: {:?}",
            finding.shrunk
        );
        let rerun = replay(&case, &finding.shrunk).unwrap();
        assert_eq!(
            rerun.outcome.violation().map(Violation::kind),
            Some(finding.violation.kind())
        );
    }

    #[test]
    fn ground_truth_is_schedule_free() {
        let spec = corpus_spec(256, Placement::Hbw, false);
        assert_eq!(ground_truth(&spec, 2), ground_truth(&spec, 2));
        assert_ne!(ground_truth(&spec, 0), ground_truth(&spec, 1));
    }

    #[test]
    fn stencil_ground_truth_folds_both_neighbours() {
        let map = corpus_spec(256, Placement::Hbw, false);
        let sten = corpus_stencil_spec(256, false);
        for c in 0..4 {
            assert_ne!(ground_truth(&map, c), ground_truth(&sten, c), "chunk {c}");
        }
        // Boundary sentinels: a 2-chunk run and a 4-chunk run disagree on
        // chunk 1 (right neighbour present vs absent).
        let short = corpus_stencil_spec(128, false);
        assert_ne!(ground_truth(&short, 1), ground_truth(&sten, 1));
        assert_eq!(ground_truth(&short, 0), ground_truth(&sten, 0));
    }

    #[test]
    fn stencil_correct_construction_survives_many_seeds() {
        for lockstep in [true, false] {
            for total in [64, 240, 448] {
                let case = FuzzCase::clean(
                    format!("stencil-{total}-{lockstep}"),
                    corpus_stencil_spec(total, lockstep),
                );
                for seed in 0..150 {
                    let run = fuzz_seed(&case, seed).unwrap();
                    assert_eq!(run.outcome, Outcome::Ok, "{} seed {seed}", case.name);
                }
            }
        }
    }

    #[test]
    fn dropped_halo_edges_produce_wrong_outputs() {
        let mut case = FuzzCase::clean("stencil-drop-halo", corpus_stencil_spec(448, false));
        case.construction = Construction::DropHaloDep;
        let finding = (0..300)
            .flat_map(|seed| fuzz_case(&case, seed, 1).unwrap())
            .next()
            .expect("dropped halo edge must be caught");
        assert_eq!(finding.violation.kind(), "wrong-output");
        assert!(finding.shrunk.len() <= 20, "{:?}", finding.shrunk);
        // The same trace is clean when every edge is honoured.
        let mut correct = case.clone();
        correct.construction = Construction::Correct;
        let rerun = replay(&correct, &finding.shrunk).unwrap();
        assert_eq!(rerun.outcome, Outcome::Ok);
        // And the weakening is a no-op for the map family.
        let mut map_case = dataflow_case();
        map_case.construction = Construction::DropHaloDep;
        for seed in 0..100 {
            let run = fuzz_seed(&map_case, seed).unwrap();
            assert_eq!(run.outcome, Outcome::Ok, "map seed {seed}");
        }
    }

    #[test]
    fn stencil_kernel_panic_drains_cleanly() {
        let mut case = FuzzCase::clean("stencil-panic", corpus_stencil_spec(448, false));
        case.faults.kernel_panic = Some(3);
        for seed in 0..100 {
            let run = fuzz_seed(&case, seed).unwrap();
            match run.outcome {
                Outcome::Poisoned {
                    chunk: 3,
                    cancelled,
                } => assert!(cancelled > 0, "poison cancels downstream work"),
                other => panic!("seed {seed}: expected clean poison-drain, got {other:?}"),
            }
        }
    }
}
