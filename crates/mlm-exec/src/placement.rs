//! The unified memory-placement vocabulary.
//!
//! Three crates used to carry their own spelling of "where do the bytes
//! live": `mlm_core::pipeline::Placement`, `mlm_memkind::Kind`, and
//! knl-sim's `MemLevel`. They converge here; the old spellings keep
//! `From` shims for one release.

use serde::{Deserialize, Serialize};

/// Where the pipeline's chunk buffers live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Buffers in flat-mode MCDRAM (the paper's chunked flat algorithm).
    Hbw,
    /// Buffers in DDR — the chunking structure with no MCDRAM (MLM-ddr).
    Ddr,
    /// No buffers at all: compute touches the original DDR data through
    /// the MCDRAM cache (the paper's *implicit cache mode*, Fig. 5).
    Implicit,
}

impl Placement {
    /// The physical tier explicit chunk buffers occupy, or `None` for
    /// [`Placement::Implicit`], which owns no buffers.
    pub fn buffer_tier(self) -> Option<MemTier> {
        match self {
            Placement::Hbw => Some(MemTier::Mcdram),
            Placement::Ddr => Some(MemTier::Ddr),
            Placement::Implicit => None,
        }
    }
}

/// A physical memory tier of the two-level KNL memory system.
///
/// This is the serde-enabled successor of knl-sim's `MemLevel` (which now
/// converts `From`/`Into` this type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTier {
    /// Capacity tier: ~90 GB/s DDR4.
    Ddr,
    /// Bandwidth tier: ~480 GB/s on-package MCDRAM.
    Mcdram,
}

/// The set of placements a backend can execute.
///
/// A backend adapter reports what its memory system offers; [`drive`]
/// refuses a spec the backend cannot honour, and mlm-verify's V010 lint
/// raises the same mismatch statically (flat-MCDRAM buffers on a
/// cache-mode machine is the canonical hard error).
///
/// [`drive`]: crate::drive
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Can place chunk buffers in flat-addressable MCDRAM
    /// ([`Placement::Hbw`]).
    pub flat_mcdram: bool,
    /// Can place chunk buffers in DDR ([`Placement::Ddr`]).
    pub ddr_buffers: bool,
    /// Has an MCDRAM cache in front of DDR ([`Placement::Implicit`]).
    pub mcdram_cache: bool,
}

impl Capabilities {
    /// A backend that executes every placement — the host adapters (plain
    /// RAM stands in for every tier) and the op-level simulator (which
    /// models all three modes).
    pub const fn all() -> Self {
        Capabilities {
            flat_mcdram: true,
            ddr_buffers: true,
            mcdram_cache: true,
        }
    }

    /// A flat-mode KNL: MCDRAM is addressable, nothing is cached.
    pub const fn flat_mode() -> Self {
        Capabilities {
            flat_mcdram: true,
            ddr_buffers: true,
            mcdram_cache: false,
        }
    }

    /// A cache-mode KNL: MCDRAM fronts DDR and is not addressable.
    pub const fn cache_mode() -> Self {
        Capabilities {
            flat_mcdram: false,
            ddr_buffers: true,
            mcdram_cache: true,
        }
    }

    /// Whether a spec with buffer placement `p` is executable here.
    pub fn supports(&self, p: Placement) -> bool {
        match p {
            Placement::Hbw => self.flat_mcdram,
            Placement::Ddr => self.ddr_buffers,
            Placement::Implicit => self.mcdram_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_tier_by_placement() {
        assert_eq!(Placement::Hbw.buffer_tier(), Some(MemTier::Mcdram));
        assert_eq!(Placement::Ddr.buffer_tier(), Some(MemTier::Ddr));
        assert_eq!(Placement::Implicit.buffer_tier(), None);
    }

    #[test]
    fn capability_support_matrix() {
        assert!(Capabilities::all().supports(Placement::Hbw));
        assert!(Capabilities::all().supports(Placement::Implicit));
        assert!(!Capabilities::flat_mode().supports(Placement::Implicit));
        assert!(Capabilities::flat_mode().supports(Placement::Hbw));
        assert!(!Capabilities::cache_mode().supports(Placement::Hbw));
        assert!(Capabilities::cache_mode().supports(Placement::Implicit));
        assert!(Capabilities::cache_mode().supports(Placement::Ddr));
    }

    #[test]
    fn placement_serde_round_trip() {
        for p in [Placement::Hbw, Placement::Ddr, Placement::Implicit] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Placement = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
        let tier: MemTier = serde_json::from_str("\"Mcdram\"").unwrap();
        assert_eq!(tier, MemTier::Mcdram);
    }
}
