//! The chunk-schedule orchestrator.
//!
//! Since the [`WorkloadPlan`](crate::plan::WorkloadPlan) refactor, this
//! module no longer hand-rolls the paper's §3 schedule: [`drive`] builds
//! the plan for the spec's workload family with
//! [`plan_pipeline`](crate::plan::plan_pipeline) and walks it over the
//! backend with [`interpret`](crate::plan::interpret). Backends (host
//! thread pools, the op-level simulator, recorders) only interpret the
//! primitive actions; the schedule itself — which chunk each stage
//! touches at each step, which buffer slot it occupies, and which
//! dependencies order the work — lives in one place, the plan builder.

use crate::backend::Backend;
use crate::error::DriveError;
use crate::graph::{verify_spec, GraphReport};
use crate::plan::{interpret, plan_pipeline};
use crate::spec::PipelineSpec;

/// Number of rotating chunk buffers for chunk-local (map) workloads.
/// Three lets step `s` overlap copy-in of chunk `s`, compute on `s-1`,
/// and copy-out of `s-2` (paper Fig. 2); chunk `c` always occupies slot
/// `c % RING_SLOTS`.
pub const RING_SLOTS: usize = 3;

/// Ring depth for the stencil family. A compute reads its *right*
/// neighbour's staged halo, so it trails the stage-in front by two steps
/// instead of one — a fourth slot keeps the pipeline full while chunk
/// `c + 1` lands. Stencil slots also carry separate in/out buffers
/// (see [`PipelineSpec::buffers_per_slot`]): computing in place would
/// corrupt the halo bytes the next compute still has to read.
pub const STENCIL_RING_SLOTS: usize = 4;

/// Walk the chunk schedule of `spec` over `backend`.
///
/// * **Explicit placements** ([`Placement::Hbw`](crate::placement::Placement::Hbw)/
///   [`Placement::Ddr`](crate::placement::Placement::Ddr)): the map family
///   runs steps `0..n+2` where step `s` issues copy-in of chunk `s`,
///   compute on `s-1`, and copy-out of `s-2`; the stencil family runs
///   steps `0..n+3` with compute on `s-2` and copy-out of `s-3`, since a
///   compute also waits for its right neighbour's halo. With
///   `spec.lockstep` every action in a step depends on the previous
///   step's barrier and a new barrier closes the step; without it, only
///   dataflow edges order the work — compute waits on the stage-ins it
///   reads (its own chunk, plus halo edges to both neighbours for
///   stencils), copy-out on its compute, and copy-in of chunk `c` waits
///   for every reader of the chunk previously occupying its slot
///   (buffer recycling).
/// * **[`Placement::Implicit`](crate::placement::Placement::Implicit)**:
///   no copies — every chunk is one compute action followed by a barrier
///   (all threads advance chunk by chunk through the cache).
///
/// Returns an error without issuing any work if the spec fails
/// validation ([`DriveError::Spec`]) or asks for a placement outside the
/// backend's [`Capabilities`](crate::placement::Capabilities)
/// ([`DriveError::Capability`]); mid-walk dependency bookkeeping failures
/// surface as [`DriveError::Protocol`] and a failing backend `finish` as
/// [`DriveError::Backend`].
pub fn drive<B: Backend>(backend: &mut B, spec: &PipelineSpec) -> Result<(), DriveError> {
    spec.validate().map_err(DriveError::Spec)?;
    if !backend.capabilities().supports(spec.placement) {
        return Err(DriveError::Capability {
            placement: spec.placement,
            capabilities: backend.capabilities(),
        });
    }
    let plan = plan_pipeline(spec);
    interpret(backend, spec, &plan)
}

/// [`drive`] with the static schedule verifier as a preflight gate.
///
/// Records the dependency graph the schedule would emit, proves it race-
/// and deadlock-free over every linearization (and within the MCDRAM
/// budget when `hbw_budget` is given), and only then drives `backend`.
/// A fatal finding comes back as [`DriveError::Verification`] carrying
/// the rendered report with its counterexample trace; on success the
/// [`GraphReport`] (with the proven peak-occupancy bound) is returned
/// alongside the completed run.
///
/// The preflight analyses the same graph the backend is about to
/// receive, so a clean verdict covers the actual execution, not a model
/// of it.
pub fn drive_verified<B: Backend>(
    backend: &mut B,
    spec: &PipelineSpec,
    hbw_budget: Option<u64>,
) -> Result<GraphReport, DriveError> {
    let report = verify_spec(spec, hbw_budget)?;
    if !report.is_safe() {
        return Err(DriveError::Verification(report.to_string()));
    }
    drive(backend, spec)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ChunkAction, Stage};
    use crate::placement::{Capabilities, Placement};
    use crate::spec::Workload;

    /// A backend that records issue order and checks dependency sanity.
    struct Probe {
        caps: Capabilities,
        issued: Vec<ChunkAction>,
        barriers: usize,
        finished: bool,
    }

    impl Probe {
        fn new(caps: Capabilities) -> Self {
            Probe {
                caps,
                issued: Vec::new(),
                barriers: 0,
                finished: false,
            }
        }
    }

    impl Backend for Probe {
        type Token = usize;

        fn capabilities(&self) -> Capabilities {
            self.caps
        }

        fn issue(&mut self, _spec: &PipelineSpec, action: ChunkAction, deps: &[usize]) -> usize {
            for &d in deps {
                assert!(d < self.issued.len() + self.barriers, "dep from the future");
            }
            self.issued.push(action);
            self.issued.len() + self.barriers - 1
        }

        fn step_barrier(&mut self, _spec: &PipelineSpec, _after: &[usize]) -> usize {
            self.barriers += 1;
            self.issued.len() + self.barriers - 1
        }

        fn finish(&mut self, _spec: &PipelineSpec) -> Result<(), String> {
            self.finished = true;
            Ok(())
        }
    }

    fn spec(n_chunks: u64, lockstep: bool, placement: Placement) -> PipelineSpec {
        PipelineSpec {
            total_bytes: n_chunks * 64,
            chunk_bytes: 64,
            p_in: 2,
            p_out: 2,
            p_comp: 4,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement,
            lockstep,
            data_addr: 0,
            workload: Workload::Map,
        }
    }

    fn stencil_spec(n_chunks: u64, lockstep: bool) -> PipelineSpec {
        PipelineSpec {
            workload: Workload::Stencil { halo_bytes: 16 },
            ..spec(n_chunks, lockstep, Placement::Hbw)
        }
    }

    #[test]
    fn explicit_schedule_covers_every_chunk_once_per_stage() {
        for lockstep in [true, false] {
            let s = spec(5, lockstep, Placement::Hbw);
            let mut b = Probe::new(Capabilities::all());
            drive(&mut b, &s).unwrap();
            assert!(b.finished);
            for stage in [Stage::CopyIn, Stage::Compute, Stage::CopyOut] {
                let chunks: Vec<usize> = b
                    .issued
                    .iter()
                    .filter(|a| a.stage == stage)
                    .map(|a| a.chunk)
                    .collect();
                assert_eq!(
                    chunks,
                    vec![0, 1, 2, 3, 4],
                    "{stage:?} under lockstep={lockstep}"
                );
            }
            // Lockstep closes all n + 2 steps with barriers.
            assert_eq!(b.barriers, if lockstep { 7 } else { 0 });
        }
    }

    #[test]
    fn slots_follow_the_three_slot_ring() {
        let s = spec(7, false, Placement::Hbw);
        let mut b = Probe::new(Capabilities::all());
        drive(&mut b, &s).unwrap();
        assert!(b.issued.iter().all(|a| a.slot == a.chunk % RING_SLOTS));
    }

    #[test]
    fn stencil_schedule_covers_every_chunk_on_a_four_slot_ring() {
        for lockstep in [true, false] {
            let s = stencil_spec(6, lockstep);
            let mut b = Probe::new(Capabilities::all());
            drive(&mut b, &s).unwrap();
            assert!(b.finished);
            for stage in [Stage::CopyIn, Stage::Compute, Stage::CopyOut] {
                let chunks: Vec<usize> = b
                    .issued
                    .iter()
                    .filter(|a| a.stage == stage)
                    .map(|a| a.chunk)
                    .collect();
                assert_eq!(chunks, vec![0, 1, 2, 3, 4, 5], "{stage:?}");
            }
            assert!(b
                .issued
                .iter()
                .all(|a| a.slot == a.chunk % STENCIL_RING_SLOTS));
            // Steps 0..n+3, all non-empty for n = 6.
            assert_eq!(b.barriers, if lockstep { 9 } else { 0 });
        }
    }

    #[test]
    fn stencil_compute_trails_the_stage_in_front_by_two() {
        let s = stencil_spec(5, false);
        let mut b = Probe::new(Capabilities::all());
        drive(&mut b, &s).unwrap();
        // Compute on chunk c must come after copy-in of chunk c + 1 (its
        // right halo) in issue order.
        for c in 0..4usize {
            let comp = b
                .issued
                .iter()
                .position(|a| a.stage == Stage::Compute && a.chunk == c)
                .unwrap();
            let in_right = b
                .issued
                .iter()
                .position(|a| a.stage == Stage::CopyIn && a.chunk == c + 1)
                .unwrap();
            assert!(comp > in_right, "compute {c} before its right halo landed");
        }
    }

    #[test]
    fn implicit_schedule_is_compute_only() {
        let s = spec(4, true, Placement::Implicit);
        let mut b = Probe::new(Capabilities::all());
        drive(&mut b, &s).unwrap();
        assert!(b.issued.iter().all(|a| a.stage == Stage::Compute));
        assert_eq!(b.issued.len(), 4);
        assert_eq!(b.barriers, 4);
    }

    #[test]
    fn capability_mismatch_is_refused_before_any_work() {
        let s = spec(4, true, Placement::Hbw);
        let mut b = Probe::new(Capabilities::cache_mode());
        let err = drive(&mut b, &s).unwrap_err();
        assert!(
            matches!(err, DriveError::Capability { placement, .. } if placement == Placement::Hbw),
            "{err}"
        );
        assert!(b.issued.is_empty());
        assert!(!b.finished);
    }

    #[test]
    fn drive_verified_gates_before_any_work() {
        let s = spec(5, false, Placement::Hbw);
        let mut b = Probe::new(Capabilities::all());
        let report = drive_verified(&mut b, &s, Some(1 << 20)).unwrap();
        assert!(b.finished);
        assert_eq!(report.peak_live_chunks, RING_SLOTS);
        // A budget below the proven peak (3 x 64 bytes) refuses the run
        // before the backend sees anything.
        let mut b = Probe::new(Capabilities::all());
        let err = drive_verified(&mut b, &s, Some(100)).unwrap_err();
        assert!(
            matches!(&err, DriveError::Verification(msg) if msg.contains("G003")),
            "{err}"
        );
        assert!(b.issued.is_empty());
        assert!(!b.finished);
    }

    #[test]
    fn invalid_spec_is_refused() {
        let mut s = spec(4, true, Placement::Hbw);
        s.p_comp = 0;
        let mut b = Probe::new(Capabilities::all());
        assert!(drive(&mut b, &s).is_err());
        assert!(b.issued.is_empty());
    }
}
