//! The workload-generic plan IR.
//!
//! Before this module, the repo's plan vocabulary was *sort-shaped*:
//! [`SortPlan`](crate::sortplan::SortPlan) enumerated megachunk phases and
//! every executor pattern-matched on them, while the chunk pipeline's
//! schedule lived as hand-rolled loops inside [`crate::drive`]. A
//! [`WorkloadPlan`] factors the common structure out: a DAG of
//! stage-in / compute-kernel / stage-out nodes (plus lockstep barriers),
//! each dependency edge tagged with *why* it exists —
//!
//! * [`EdgeKind::Seq`] — phase sequencing (a barrier or a previous phase's
//!   join);
//! * [`EdgeKind::Data`] — the value being produced flows along the edge;
//! * [`EdgeKind::Recycle`] — a buffer slot is reused, so the writer waits
//!   for the last reader of the previous occupant;
//! * [`EdgeKind::Halo`] — an *inter-chunk* data edge: a compute reads
//!   boundary bytes from a neighbouring chunk's staged buffer (the
//!   stencil family's genuinely new token shape).
//!
//! Two producers lower into the IR: [`plan_pipeline`] builds the §3 chunk
//! schedule for any [`Workload`] (the drive orchestrator is now "build the
//! plan, interpret it over a [`Backend`]"), and
//! [`SortPlan::to_workload_plan`](crate::sortplan::SortPlan::to_workload_plan)
//! lowers the megachunk-level sort phases. Two generic interpreters
//! consume it: [`interpret`] walks a chunk-level plan over any backend
//! (host pools, simulator, recorders, the fuzzer), and [`waves`] groups a
//! megachunk-level plan into maximal runs of mutually-independent nodes so
//! host-style executors can run each wave as one task batch — which is
//! exactly how the buffered sort overlaps its prefetch with compute.

use crate::backend::{Backend, ChunkAction, Stage};
use crate::error::DriveError;
use crate::placement::Placement;
use crate::spec::{PipelineSpec, Workload};

/// What one plan node does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Stage a chunk (or megachunk) into its working buffer.
    StageIn,
    /// Run a compute kernel (see [`WorkloadPlan::kernels`]).
    Kernel,
    /// Drain the result back out. A stage-out may carry a kernel index
    /// too: the sort family's merge-out transforms while it drains.
    StageOut,
    /// A lockstep step barrier over its dependency set.
    Barrier,
}

impl PlanKind {
    /// The backend stage a chunk-level node maps to (barriers map to
    /// [`Backend::step_barrier`] instead).
    pub fn stage(self) -> Option<Stage> {
        match self {
            PlanKind::StageIn => Some(Stage::CopyIn),
            PlanKind::Kernel => Some(Stage::Compute),
            PlanKind::StageOut => Some(Stage::CopyOut),
            PlanKind::Barrier => None,
        }
    }
}

/// Why a dependency edge exists. Interpreters that only need ordering may
/// ignore the kind; the graph analyzer, the fuzzer's discipline
/// weakenings, and the sim lowering dispatch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Phase sequencing: the node runs after the previous phase's join or
    /// the previous lockstep barrier.
    Seq,
    /// The producing node's output is this node's input.
    Data,
    /// Buffer-slot reuse: wait for the last consumer of the slot's
    /// previous occupant before overwriting it.
    Recycle,
    /// Inter-chunk halo read: this compute consumes boundary bytes from a
    /// *neighbouring* chunk's staged buffer.
    Halo,
}

/// One dependency edge: this node waits for `from`'s completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Index of the node waited on (always earlier in the node list).
    pub from: usize,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

impl PlanEdge {
    /// Shorthand constructor.
    pub fn new(from: usize, kind: EdgeKind) -> Self {
        PlanEdge { from, kind }
    }
}

/// One node of a workload plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// What the node does.
    pub kind: PlanKind,
    /// The chunk (pipeline plans) or megachunk (sort plans) the node
    /// works on; `None` for global phases spanning the whole data set.
    pub chunk: Option<usize>,
    /// Ring slot a chunk-scoped node occupies (`chunk % ring_slots`).
    pub slot: usize,
    /// Index into [`WorkloadPlan::kernels`] for compute-carrying nodes.
    pub kernel: Option<usize>,
    /// Payload size in workload units (bytes for pipeline plans,
    /// elements for sort plans).
    pub len: u64,
    /// Dependency edges, in issue order.
    pub deps: Vec<PlanEdge>,
}

/// A compute kernel a plan references, with the footprint parameters the
/// sim lowering retunes the paper's Eqs. 1–5 with: traffic per staged
/// byte is `passes` read+write sweeps plus `extra_read_bytes` of
/// neighbour reads (the halo), so each kernel family prices at its own
/// compute/byte ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel family name (`"map"`, `"stencil"`, or a sort phase name).
    pub name: String,
    /// Read+write passes over the staged payload per invocation.
    pub passes: u32,
    /// Extra bytes read from *other* resident buffers per invocation
    /// (the stencil's two halos; zero for chunk-local kernels).
    pub extra_read_bytes: u64,
}

/// A workload-generic execution plan: nodes in issue order, each with
/// tagged dependency edges pointing at earlier nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// Workload family name (`"map"`, `"stencil"`, `"sort"`).
    pub family: &'static str,
    /// Buffer-ring depth chunk-scoped slots rotate over.
    pub ring_slots: usize,
    /// Number of chunks (pipeline) or megachunks (sort) the plan covers.
    pub chunks: usize,
    /// The kernels [`PlanNode::kernel`] indexes into.
    pub kernels: Vec<KernelDesc>,
    /// The nodes, in issue order.
    pub nodes: Vec<PlanNode>,
}

impl WorkloadPlan {
    /// Structural sanity: every edge points at an earlier node, kernel
    /// indices are in range, chunk-scoped slots honour the ring.
    pub fn validate(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            for e in &node.deps {
                if e.from >= i {
                    return Err(format!(
                        "node {i} depends on node {} which is not earlier in the plan",
                        e.from
                    ));
                }
            }
            if let Some(k) = node.kernel {
                if k >= self.kernels.len() {
                    return Err(format!("node {i} references undefined kernel {k}"));
                }
            }
            if let Some(c) = node.chunk {
                if self.ring_slots > 0 && node.slot != c % self.ring_slots {
                    return Err(format!(
                        "node {i}: slot {} breaks the {}-slot ring discipline for chunk {c}",
                        node.slot, self.ring_slots
                    ));
                }
            }
        }
        Ok(())
    }

    /// The node index of `(kind, chunk)`, if the plan contains it.
    pub fn find(&self, kind: PlanKind, chunk: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.kind == kind && n.chunk == Some(chunk))
    }
}

/// Lower the §3 chunk schedule of `spec` into a [`WorkloadPlan`].
///
/// This is the single place that knows which chunk each stage touches at
/// each step, which slot it occupies, and which dependencies order the
/// work — for every workload family and all three schedule modes
/// (lockstep, dataflow, implicit). [`crate::drive`] is "build this plan,
/// [`interpret`] it"; the graph verifier and the fuzzer analyse the exact
/// DAG written here.
pub fn plan_pipeline(spec: &PipelineSpec) -> WorkloadPlan {
    let n = spec.n_chunks();
    let ring = spec.ring_slots();
    let kernels = vec![match spec.workload {
        Workload::Map => KernelDesc {
            name: "map".into(),
            passes: spec.compute_passes,
            extra_read_bytes: 0,
        },
        Workload::Stencil { halo_bytes } => KernelDesc {
            name: "stencil".into(),
            passes: spec.compute_passes,
            extra_read_bytes: 2 * halo_bytes,
        },
    }];
    let mut plan = WorkloadPlan {
        family: spec.workload.family(),
        ring_slots: ring,
        chunks: n,
        kernels,
        nodes: Vec::new(),
    };

    let push = |plan: &mut WorkloadPlan, kind: PlanKind, chunk: usize, deps: Vec<PlanEdge>| {
        let kernel = (kind == PlanKind::Kernel).then_some(0);
        plan.nodes.push(PlanNode {
            kind,
            chunk: Some(chunk),
            slot: chunk % ring,
            kernel,
            len: spec.chunk_size(chunk),
            deps,
        });
        plan.nodes.len() - 1
    };

    if spec.placement == Placement::Implicit {
        // Cache mode: no copies — one compute per chunk, all threads
        // advancing chunk by chunk behind a barrier.
        let mut barrier: Option<usize> = None;
        for c in 0..n {
            let deps = barrier
                .map(|b| vec![PlanEdge::new(b, EdgeKind::Seq)])
                .into_iter()
                .flatten()
                .collect();
            let comp = push(&mut plan, PlanKind::Kernel, c, deps);
            plan.nodes.push(PlanNode {
                kind: PlanKind::Barrier,
                chunk: None,
                slot: 0,
                kernel: None,
                len: 0,
                deps: vec![PlanEdge::new(comp, EdgeKind::Seq)],
            });
            barrier = Some(plan.nodes.len() - 1);
        }
        return plan;
    }

    // Explicit staging. The schedule pipelines `ring - 2` stage distances:
    // with the classic 3-slot ring, step `s` stages in chunk `s`, computes
    // `s - 1`, drains `s - 2`; the stencil's 4-slot ring opens one more
    // step of pipeline distance (compute must wait for its *right* halo's
    // stage-in), so step `s` computes `s - 2` and drains `s - 3`.
    let (comp_lag, out_lag) = match spec.workload {
        Workload::Map => (1usize, 2usize),
        Workload::Stencil { .. } => (2, 3),
    };
    let mut stage_in: Vec<Option<usize>> = vec![None; n];
    let mut compute: Vec<Option<usize>> = vec![None; n];
    let mut stage_out: Vec<Option<usize>> = vec![None; n];
    let mut barrier: Option<usize> = None;
    let seq = |b: &Option<usize>| -> Vec<PlanEdge> {
        b.iter().map(|&i| PlanEdge::new(i, EdgeKind::Seq)).collect()
    };

    for s in 0..n + out_lag {
        let mut step_nodes: Vec<usize> = Vec::new();

        // Stage-in of chunk `s`.
        if s < n {
            let deps = if spec.lockstep {
                seq(&barrier)
            } else {
                match spec.workload {
                    // Slot s % 3 is free once chunk s - 3 has drained.
                    Workload::Map if s >= ring => vec![PlanEdge::new(
                        stage_out[s - ring].expect("drained in an earlier step"),
                        EdgeKind::Recycle,
                    )],
                    // Slot s % 4 held chunk s - 4, which computes
                    // s - 5, s - 4, and s - 3 all read (left halo, own
                    // chunk, right halo): the overwrite waits for every
                    // reader, not just the owner.
                    Workload::Stencil { .. } if s >= ring => ((s - ring).saturating_sub(1)
                        ..=(s - ring + 1).min(n - 1))
                        .filter_map(|c| compute[c])
                        .map(|i| PlanEdge::new(i, EdgeKind::Recycle))
                        .collect(),
                    _ => Vec::new(),
                }
            };
            stage_in[s] = Some(push(&mut plan, PlanKind::StageIn, s, deps));
            step_nodes.push(stage_in[s].unwrap());
        }

        // Compute on chunk `s - comp_lag`.
        if s >= comp_lag && s - comp_lag < n {
            let c = s - comp_lag;
            let deps = if spec.lockstep {
                seq(&barrier)
            } else {
                let mut deps = Vec::new();
                if let Workload::Stencil { .. } = spec.workload {
                    if c > 0 {
                        deps.push(PlanEdge::new(
                            stage_in[c - 1].expect("staged earlier"),
                            EdgeKind::Halo,
                        ));
                    }
                }
                deps.push(PlanEdge::new(
                    stage_in[c].expect("staged earlier"),
                    EdgeKind::Data,
                ));
                if let Workload::Stencil { .. } = spec.workload {
                    if c + 1 < n {
                        deps.push(PlanEdge::new(
                            stage_in[c + 1].expect("staged this step or earlier"),
                            EdgeKind::Halo,
                        ));
                    }
                    // The output buffer of slot c % 4 is free once chunk
                    // c - 4 has drained.
                    if c >= ring {
                        deps.push(PlanEdge::new(
                            stage_out[c - ring].expect("drained earlier"),
                            EdgeKind::Recycle,
                        ));
                    }
                }
                deps
            };
            compute[c] = Some(push(&mut plan, PlanKind::Kernel, c, deps));
            step_nodes.push(compute[c].unwrap());
        }

        // Stage-out of chunk `s - out_lag`.
        if s >= out_lag && s - out_lag < n {
            let c = s - out_lag;
            let deps = if spec.lockstep {
                seq(&barrier)
            } else {
                vec![PlanEdge::new(
                    compute[c].expect("computed earlier"),
                    EdgeKind::Data,
                )]
            };
            stage_out[c] = Some(push(&mut plan, PlanKind::StageOut, c, deps));
            step_nodes.push(stage_out[c].unwrap());
        }

        if spec.lockstep && !step_nodes.is_empty() {
            plan.nodes.push(PlanNode {
                kind: PlanKind::Barrier,
                chunk: None,
                slot: 0,
                kernel: None,
                len: 0,
                deps: step_nodes
                    .iter()
                    .map(|&i| PlanEdge::new(i, EdgeKind::Seq))
                    .collect(),
            });
            barrier = Some(plan.nodes.len() - 1);
        }
    }

    plan
}

/// Interpret a chunk-level plan over a [`Backend`]: issue every node in
/// plan order, mapping edges to the tokens the backend handed back, and
/// close lockstep steps at barrier nodes. This is the *only* executor the
/// chunk pipeline has — every backend (host pools, the simulator,
/// recorders, the fuzzer) sees the identical action/dependency stream.
pub fn interpret<B: Backend>(
    backend: &mut B,
    spec: &PipelineSpec,
    plan: &WorkloadPlan,
) -> Result<(), DriveError> {
    let mut tokens: Vec<B::Token> = Vec::with_capacity(plan.nodes.len());
    for (i, node) in plan.nodes.iter().enumerate() {
        let mut deps = Vec::with_capacity(node.deps.len());
        for e in &node.deps {
            if e.from >= i {
                return Err(DriveError::Protocol {
                    op: node.kind.stage().unwrap_or(Stage::Compute),
                    chunk: node.chunk.unwrap_or(0),
                    detail: format!("plan edge {} -> {i} points forward", e.from),
                });
            }
            deps.push(tokens[e.from].clone());
        }
        let token = match node.kind {
            PlanKind::Barrier => backend.step_barrier(spec, &deps),
            kind => {
                let stage = kind.stage().expect("non-barrier kinds map to stages");
                let chunk = node.chunk.ok_or(DriveError::Protocol {
                    op: stage,
                    chunk: 0,
                    detail: "chunk-level plans cannot contain global nodes".into(),
                })?;
                let action = ChunkAction {
                    stage,
                    chunk,
                    slot: node.slot,
                };
                backend.issue(spec, action, &deps)
            }
        };
        tokens.push(token);
    }
    backend.finish(spec).map_err(DriveError::Backend)
}

/// Group a plan's nodes into *waves*: maximal runs of consecutive nodes
/// with no dependency edges between them. Every node's dependencies land
/// in an earlier wave, so an executor may run each wave as one parallel
/// task batch with a join in between — the generic form of the buffered
/// sort's "prefetch megachunk `m + 1` while sorting `m`" overlap, while a
/// strictly sequential plan (every node depending on its predecessor)
/// degenerates to one node per wave.
pub fn waves(plan: &WorkloadPlan) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (i, node) in plan.nodes.iter().enumerate() {
        let depends_on_current = node.deps.iter().any(|e| current.contains(&e.from));
        if depends_on_current && !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
        current.push(i);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::{RING_SLOTS, STENCIL_RING_SLOTS};

    fn spec(n_chunks: u64, lockstep: bool, workload: Workload) -> PipelineSpec {
        PipelineSpec {
            total_bytes: n_chunks * 64,
            chunk_bytes: 64,
            p_in: 1,
            p_out: 1,
            p_comp: 2,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep,
            data_addr: 0,
            workload,
        }
    }

    fn stencil() -> Workload {
        Workload::Stencil { halo_bytes: 16 }
    }

    #[test]
    fn plans_validate_for_all_modes_and_families() {
        for lockstep in [true, false] {
            for workload in [Workload::Map, stencil()] {
                for n in [1, 2, 5, 9] {
                    let p = plan_pipeline(&spec(n, lockstep, workload));
                    p.validate()
                        .unwrap_or_else(|e| panic!("{workload:?} lockstep={lockstep} n={n}: {e}"));
                    assert_eq!(p.chunks, n as usize);
                }
            }
        }
        let mut s = spec(4, true, Workload::Map);
        s.placement = Placement::Implicit;
        plan_pipeline(&s).validate().unwrap();
    }

    #[test]
    fn map_plan_matches_the_paper_schedule() {
        let p = plan_pipeline(&spec(5, false, Workload::Map));
        assert_eq!(p.family, "map");
        assert_eq!(p.ring_slots, RING_SLOTS);
        // Compute waits on its own stage-in; stage-in of chunk 3 recycles
        // chunk 0's slot.
        let comp2 = p.find(PlanKind::Kernel, 2).unwrap();
        assert_eq!(p.nodes[comp2].deps.len(), 1);
        assert_eq!(p.nodes[comp2].deps[0].kind, EdgeKind::Data);
        let in3 = p.find(PlanKind::StageIn, 3).unwrap();
        assert_eq!(p.nodes[in3].deps.len(), 1);
        assert_eq!(p.nodes[in3].deps[0].kind, EdgeKind::Recycle);
        assert_eq!(
            p.nodes[p.nodes[in3].deps[0].from].chunk,
            Some(0),
            "slot 0 is freed by chunk 0's drain"
        );
    }

    #[test]
    fn stencil_plan_has_halo_edges_and_a_deeper_ring() {
        let p = plan_pipeline(&spec(6, false, stencil()));
        assert_eq!(p.family, "stencil");
        assert_eq!(p.ring_slots, STENCIL_RING_SLOTS);
        assert_eq!(p.kernels[0].extra_read_bytes, 32);

        // An interior compute reads left halo, own chunk, right halo, and
        // recycles the out-buffer of chunk c - 4.
        let comp4 = p.find(PlanKind::Kernel, 4).unwrap();
        let kinds: Vec<EdgeKind> = p.nodes[comp4].deps.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EdgeKind::Halo,
                EdgeKind::Data,
                EdgeKind::Halo,
                EdgeKind::Recycle
            ]
        );
        let dep_chunks: Vec<Option<usize>> = p.nodes[comp4]
            .deps
            .iter()
            .map(|e| p.nodes[e.from].chunk)
            .collect();
        assert_eq!(dep_chunks, vec![Some(3), Some(4), Some(5), Some(0)]);

        // Boundary computes drop the missing halo.
        let comp0 = p.find(PlanKind::Kernel, 0).unwrap();
        let kinds: Vec<EdgeKind> = p.nodes[comp0].deps.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EdgeKind::Data, EdgeKind::Halo]);

        // Stage-in of chunk 4 (slot 0) waits for every reader of chunk 0:
        // its own compute plus the left-halo read of compute 1 (compute
        // -1 does not exist).
        let in4 = p.find(PlanKind::StageIn, 4).unwrap();
        let readers: Vec<Option<usize>> = p.nodes[in4]
            .deps
            .iter()
            .map(|e| p.nodes[e.from].chunk)
            .collect();
        assert_eq!(readers, vec![Some(0), Some(1)]);
        assert!(p.nodes[in4]
            .deps
            .iter()
            .all(|e| e.kind == EdgeKind::Recycle));
    }

    #[test]
    fn stencil_lockstep_plan_barriers_every_nonempty_step() {
        let p = plan_pipeline(&spec(5, true, stencil()));
        let barriers = p
            .nodes
            .iter()
            .filter(|n| n.kind == PlanKind::Barrier)
            .count();
        // Steps 0..n+3 all carry at least one action for n = 5.
        assert_eq!(barriers, 8);
        // Every non-barrier node after the first barrier depends on one.
        for (i, node) in p.nodes.iter().enumerate() {
            if node.kind == PlanKind::Barrier || i == 0 {
                continue;
            }
            assert!(
                node.deps
                    .iter()
                    .all(|e| p.nodes[e.from].kind == PlanKind::Barrier),
                "node {i} must only depend on barriers under lockstep"
            );
        }
    }

    #[test]
    fn ragged_tail_lands_in_the_last_chunk_len() {
        let mut s = spec(4, false, stencil());
        s.total_bytes = 4 * 64 - 24;
        let p = plan_pipeline(&s);
        let in3 = p.find(PlanKind::StageIn, 3).unwrap();
        assert_eq!(p.nodes[in3].len, 40);
    }

    #[test]
    fn waves_sequence_sequential_plans_and_batch_independent_nodes() {
        // A sequential chain (implicit mode's compute/barrier alternation):
        // one node per wave.
        let mut s = spec(3, true, Workload::Map);
        s.placement = Placement::Implicit;
        let w = waves(&plan_pipeline(&s));
        assert!(w.iter().all(|wave| wave.len() == 1), "{w:?}");

        // Lockstep: a step's actions all hang off the previous barrier, so
        // each step forms one wave with the barrier alone in the next.
        let p = plan_pipeline(&spec(3, true, Workload::Map));
        let w = waves(&p);
        for wave in &w {
            let kinds: Vec<PlanKind> = wave.iter().map(|&i| p.nodes[i].kind).collect();
            assert!(
                kinds.iter().all(|k| *k != PlanKind::Barrier) || kinds.len() == 1,
                "{kinds:?}"
            );
        }

        // Dataflow: step-mates are mutually independent and share waves.
        let p = plan_pipeline(&spec(5, false, Workload::Map));
        let w = waves(&p);
        assert_eq!(w.iter().map(Vec::len).sum::<usize>(), p.nodes.len());
        assert!(w.iter().any(|wave| wave.len() > 1), "{w:?}");
        // No wave contains an internal dependency.
        for wave in &w {
            for &i in wave {
                assert!(p.nodes[i].deps.iter().all(|e| !wave.contains(&e.from)));
            }
        }
    }
}
