//! Property tests for the serving subsystem: admitted jobs always finish,
//! the broker's ledger drains back to zero, and a single-job serve is the
//! same pipeline the paper's single-tenant machinery runs.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{Simulator, GIB};
use mlm_core::pipeline::sim::build_program;
use mlm_core::{PipelineSpec, Placement, Workload};
use mlm_serve::{
    heavy_tailed_trace, profile, replay, serve, AdmitOutcome, CapacityBroker, DeadlineClass,
    JobRequest, Policy, ScheduledJob, ServeConfig, TraceConfig,
};
use proptest::prelude::*;

fn machine() -> MachineConfig {
    MachineConfig::knl_7250(MemMode::Flat)
}

fn spec(total: u64, chunk: u64, passes: u32, placement: Placement) -> PipelineSpec {
    let m = machine();
    PipelineSpec {
        total_bytes: total,
        chunk_bytes: chunk,
        p_in: 2,
        p_out: 2,
        p_comp: 8,
        compute_passes: passes,
        compute_rate: m.per_thread_compute_bw,
        copy_rate: m.per_thread_copy_bw,
        placement,
        lockstep: false,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Sjf),
        Just(Policy::FairShare),
    ]
}

fn any_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![Just(Placement::Hbw), Just(Placement::Ddr)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the trace, policy, budget, and spill flag, every job that
    /// is not rejected at submission runs to completion with sane times —
    /// admission keeps no job queued forever.
    #[test]
    fn admitted_jobs_never_starve(
        seed in any::<u64>(),
        n_jobs in 1usize..30,
        rate in 0.5f64..6.0,
        policy in any_policy(),
        budget_gib in 4u64..=16,
        spill in any::<bool>(),
    ) {
        let tc = TraceConfig::new(machine(), n_jobs, rate, seed);
        let jobs = heavy_tailed_trace(&tc);
        let mut cfg = ServeConfig::new(machine());
        cfg.policy = policy;
        cfg.mcdram_budget = budget_gib * GIB;
        cfg.spill = spill;
        let out = serve(&cfg, &jobs).unwrap();
        prop_assert_eq!(out.records.len() + out.rejections.len(), jobs.len());
        for r in &out.records {
            let j = jobs.iter().find(|j| j.id == r.id).unwrap();
            prop_assert!(r.start >= j.arrival - 1e-9);
            prop_assert!(r.finish > r.start);
            prop_assert!(r.finish.is_finite());
        }
        prop_assert!(out.fleet.mcdram_high_water <= budget_gib * GIB);
    }

    /// The broker is a ledger: admit any mix of jobs, release everything,
    /// and both the reservation count and the reserved byte total return
    /// to exactly zero — no leaked or double-freed capacity.
    #[test]
    fn broker_balance_returns_to_zero_after_drain(
        budget_gib in 2u64..=16,
        spill in any::<bool>(),
        requests in proptest::collection::vec(
            (1u64..=8, 1u32..=4, any_placement()),
            1..12,
        ),
    ) {
        let mut broker = CapacityBroker::new(&machine(), budget_gib * GIB, spill);
        let mut held = Vec::new();
        for (chunk_gib, passes, placement) in requests {
            let s = spec(32 * GIB, chunk_gib * GIB, passes, placement);
            if !broker.can_ever_fit(&s) {
                continue;
            }
            match broker.try_admit(&s).unwrap() {
                AdmitOutcome::Admitted(Some(r)) => held.push(r),
                AdmitOutcome::Admitted(None) | AdmitOutcome::Busy => {}
            }
            prop_assert!(broker.reserved_mcdram() <= broker.budget());
        }
        for r in &held {
            broker.release(r).unwrap();
        }
        prop_assert_eq!(broker.balance(), 0);
        prop_assert_eq!(broker.reserved_mcdram(), 0);
        prop_assert!(broker.high_water() <= broker.budget());
    }

    /// A fleet of one is the paper's single-tenant case: the op-level
    /// replay of a lone job is bit-for-bit the program `build_program`
    /// produces, and the job-level scheduler finishes it in its dedicated
    /// §3.2 service time.
    #[test]
    fn single_job_serve_reproduces_the_single_job_pipeline(
        total_mib in 256u64..=2048,
        chunk_mib in 128u64..=512,
        passes in 1u32..=3,
    ) {
        let s = spec(total_mib << 20, chunk_mib << 20, passes, Placement::Hbw);
        // Op-level: identical program, identical virtual clock.
        let direct = Simulator::new(machine())
            .run(&build_program(&s).unwrap())
            .unwrap();
        let (stats, report) = replay(
            &machine(),
            &[ScheduledJob { id: 7, start: 0.0, spec: s.clone() }],
        )
        .unwrap();
        prop_assert_eq!(report.makespan.to_bits(), direct.makespan.to_bits());
        prop_assert_eq!(stats[0].makespan.to_bits(), direct.makespan.to_bits());
        // Job-level: alone on the node, the scheduler's finish time is the
        // model's dedicated-machine makespan.
        let cfg = ServeConfig::new(machine());
        let out = serve(&cfg, &[JobRequest::new(7, 0.0, DeadlineClass::Standard, s.clone())])
            .unwrap();
        let t0 = profile(&s, Placement::Hbw, &cfg.machine, cfg.machine.total_threads(), true)
            .unwrap()
            .t0;
        prop_assert_eq!(out.records.len(), 1);
        prop_assert!((out.records[0].finish - t0).abs() <= 1e-9 * t0);
    }
}
