//! Integration tests for the multi-node extension (paper §6 future work):
//! real message-passing PSRS with MLM-sort locals, plus the scaling model.

use mlm_cluster::host::cluster_sort;
use mlm_cluster::sim::simulate_cluster_sort;
use mlm_cluster::ClusterConfig;
use mlm_core::workload::{generate_keys, InputOrder};
use mlm_core::Calibration;
use parsort::serial::is_sorted;
use proptest::prelude::*;

#[test]
fn distributed_sort_matches_std_at_scale() {
    let cfg = ClusterConfig::omnipath(6);
    let data = generate_keys(240_000, InputOrder::Random, 77);
    let mut expect = data.clone();
    expect.sort_unstable();
    let (got, stats) = cluster_sort(&cfg, &data, 3, 20_000);
    assert_eq!(got, expect);
    assert_eq!(stats.nodes, 6);
    assert_eq!(stats.received_per_node.iter().sum::<usize>(), 240_000);
}

#[test]
fn distributed_and_single_node_agree() {
    let data = generate_keys(60_000, InputOrder::Reverse, 3);
    let (single, _) = cluster_sort(&ClusterConfig::omnipath(1), &data, 4, 15_000);
    let (multi, _) = cluster_sort(&ClusterConfig::omnipath(5), &data, 2, 6_000);
    assert_eq!(single, multi);
    assert!(is_sorted(&single));
}

#[test]
fn sim_and_host_share_the_phase_structure() {
    // The sim models the exact four PSRS phases the host executes; sanity:
    // the simulated phase breakdown is positive wherever the host phase
    // does work.
    let r = simulate_cluster_sort(
        &ClusterConfig::omnipath(4),
        &Calibration::default(),
        4_000_000_000,
        InputOrder::Random,
        1_000_000_000,
        256,
    )
    .unwrap();
    assert!(r.local_sort > 0.0);
    assert!(r.exchange > 0.0);
    assert!(r.final_merge > 0.0);
    assert!((r.local_sort + r.exchange + r.final_merge) <= r.total + 1e-9);
}

#[test]
fn weak_scaling_holds_total_roughly_constant() {
    // Weak scaling: problem grows with nodes => per-node work constant,
    // total time should stay within ~25% of the single-node time.
    let cal = Calibration::default();
    let base = simulate_cluster_sort(
        &ClusterConfig::omnipath(1),
        &cal,
        BILLION,
        InputOrder::Random,
        BILLION,
        256,
    )
    .unwrap();
    for nodes in [2usize, 8, 32] {
        let r = simulate_cluster_sort(
            &ClusterConfig::omnipath(nodes),
            &cal,
            BILLION * nodes as u64,
            InputOrder::Random,
            BILLION,
            256,
        )
        .unwrap();
        let ratio = r.total / base.total;
        assert!(
            (0.9..1.4).contains(&ratio),
            "weak scaling at {nodes} nodes: ratio {ratio:.2}"
        );
    }
}

const BILLION: u64 = 1_000_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn psrs_equals_std_sort_on_arbitrary_input(
        data in proptest::collection::vec(any::<i64>(), 0..20_000),
        nodes in 1usize..7,
        threads in 1usize..4,
    ) {
        let cfg = ClusterConfig::omnipath(nodes);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mega = (data.len() / 3).max(1);
        let (got, stats) = cluster_sort(&cfg, &data, threads, mega);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(stats.received_per_node.iter().sum::<usize>(), data.len());
    }
}
