//! Differential property tests: the optimized event-queue engine must be
//! observationally identical to the preserved naive reference loop
//! (`reference-engine` feature) on arbitrary mixed programs — completion
//! times, served bytes, and bus-utilization integrals within 1e-9
//! relative, and cache statistics bit-for-bit (cache-mode results depend
//! on op *start order*, so exact equality here proves the ready worklist
//! replays the naive scan order).

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::ops::{Access, OpKind, Place, Program};
use knl_sim::{Simulator, Trace, GB};
use proptest::prelude::*;

/// One op's worth of generator decisions. Everything is quantized so
/// failures reproduce exactly and caps stay ≥ 5e8 B/s (far above the
/// naive loop's EPS_BYTES completion window).
#[derive(Debug, Clone, Copy)]
struct OpSeed {
    thread: usize,
    kind: u8,
    size: u8,
    cap: u8,
    link: u8,
    barrier: u8,
}

fn op_seed() -> impl Strategy<Value = OpSeed> {
    (0..8usize, 0..5u8, 0..32u8, 0..4u8, 0..8u8, 0..16u8).prop_map(
        |(thread, kind, size, cap, link, barrier)| OpSeed {
            thread,
            kind,
            size,
            cap,
            link,
            barrier,
        },
    )
}

/// Deterministically expand seeds into a validated program: mixed
/// copies, cached-DDR streams, delays (including zero-delay instants),
/// sparse backward dependencies, and occasional all-thread barriers.
///
/// `mode` picks the scratch target: flat/hybrid machines address MCDRAM
/// directly, while in cache mode all of MCDRAM is cache, so scratch
/// traffic goes through `CachedDdr` ranges instead.
fn build(threads: usize, seeds: &[OpSeed], mode: MemMode) -> Program {
    let mut p = Program::new(threads);
    let mut all = Vec::new();
    for s in seeds {
        let t = s.thread % threads;
        let bytes = 16_000_000 * (1 + s.size as u64);
        let cap = [0.5, 1.0, 2.4, 4.8][s.cap as usize % 4] * GB;
        let scratch = if mode.has_flat() {
            Place::Mcdram
        } else {
            Place::CachedDdr {
                addr: 32_000_000_000 + s.cap as u64 * 1_000_000_000,
            }
        };
        let kind = match s.kind % 5 {
            0 => OpKind::copy(Place::Ddr, scratch, bytes, cap),
            1 => OpKind::copy(scratch, Place::Ddr, bytes, cap),
            2 => OpKind::Stream {
                accesses: vec![
                    Access::read(
                        Place::CachedDdr {
                            addr: s.size as u64 * 64_000_000,
                        },
                        bytes,
                    ),
                    Access::write(scratch, bytes),
                ],
                rate_cap: cap,
            },
            3 => OpKind::Delay {
                seconds: 1e-4 * (s.size % 8) as f64,
            },
            _ => OpKind::inplace_pass(scratch, bytes, cap),
        };
        let deps = if s.link > 4 && !all.is_empty() {
            vec![all[(s.link as usize * 7919) % all.len()]]
        } else {
            Vec::new()
        };
        let id = p.push(t, kind, &deps);
        all.push(id);
        if s.barrier == 0 {
            all.extend(p.barrier(0..threads, &[id]));
        }
    }
    p
}

/// Piecewise-constant integrals of the two bus-utilization timelines.
/// The optimized engine merges adjacent identical segments and the naive
/// loop does not, so raw segment lists differ by construction — the
/// integral is the representation-independent comparison.
fn bus_integrals(t: &Trace) -> (f64, f64) {
    t.bus.iter().fold((0.0, 0.0), |(d, m), s| {
        let dt = s.end - s.start;
        (d + s.ddr * dt, m + s.mcdram * dt)
    })
}

fn assert_engines_agree(prog: &Program, mode: MemMode) {
    let sim = Simulator::new(MachineConfig::knl_7250(mode));
    let (fast, fast_tr) = sim.run_traced(prog).expect("optimized engine");
    let (slow, slow_tr) = sim.run_traced_reference(prog).expect("reference engine");

    let tol = 1e-9 * slow.makespan.abs().max(1.0);
    prop_assert!(
        (fast.makespan - slow.makespan).abs() <= tol,
        "makespan: fast={} slow={}",
        fast.makespan,
        slow.makespan
    );
    prop_assert_eq!(fast.ops_executed, slow.ops_executed);
    prop_assert_eq!(fast.cache, slow.cache, "cache stats must match exactly");

    for lvl in 0..2 {
        let s = slow.served_bytes[lvl];
        prop_assert!(
            (fast.served_bytes[lvl] - s).abs() <= 1e-9 * s.abs().max(1.0),
            "served_bytes[{}]: fast={} slow={}",
            lvl,
            fast.served_bytes[lvl],
            s
        );
    }

    // Per-op completion records, matched by op id.
    let mut fast_ops = fast_tr.ops.clone();
    let mut slow_ops = slow_tr.ops.clone();
    fast_ops.sort_by_key(|r| r.op);
    slow_ops.sort_by_key(|r| r.op);
    prop_assert_eq!(fast_ops.len(), slow_ops.len());
    for (f, s) in fast_ops.iter().zip(&slow_ops) {
        prop_assert_eq!(f.op, s.op);
        prop_assert_eq!(f.thread, s.thread);
        prop_assert!(
            (f.start - s.start).abs() <= tol && (f.end - s.end).abs() <= tol,
            "op {}: fast=[{}, {}] slow=[{}, {}]",
            f.op,
            f.start,
            f.end,
            s.start,
            s.end
        );
    }

    let (fd, fm) = bus_integrals(&fast_tr);
    let (sd, sm) = bus_integrals(&slow_tr);
    prop_assert!(
        (fd - sd).abs() <= 1e-9 * sd.abs().max(1.0),
        "ddr bus integral: fast={fd} slow={sd}"
    );
    prop_assert!(
        (fm - sm).abs() <= 1e-9 * sm.abs().max(1.0),
        "mcdram bus integral: fast={fm} slow={sm}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_engine_equals_reference_flat(
        threads in 1usize..7,
        seeds in proptest::collection::vec(op_seed(), 1..40),
    ) {
        let prog = build(threads, &seeds, MemMode::Flat);
        prog.validate().expect("generated programs are valid");
        assert_engines_agree(&prog, MemMode::Flat);
    }

    #[test]
    fn optimized_engine_equals_reference_cache(
        threads in 1usize..7,
        seeds in proptest::collection::vec(op_seed(), 1..40),
    ) {
        let prog = build(threads, &seeds, MemMode::Cache);
        prog.validate().expect("generated programs are valid");
        assert_engines_agree(&prog, MemMode::Cache);
    }

    #[test]
    fn optimized_engine_equals_reference_hybrid(
        threads in 1usize..7,
        seeds in proptest::collection::vec(op_seed(), 1..24),
    ) {
        let mode = MemMode::Hybrid { cache_fraction: 0.5 };
        let prog = build(threads, &seeds, mode);
        prog.validate().expect("generated programs are valid");
        assert_engines_agree(&prog, mode);
    }
}
