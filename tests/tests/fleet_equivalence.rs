//! Property tests for the fleet dispatcher: a fleet of one is the
//! single-node scheduler bit-for-bit, work stealing never lets any node
//! exceed its MCDRAM budget, and the virtual-time and real-thread host
//! dispatchers make identical canonical decisions on the demo batch.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{MemLevel, GIB};
use mlm_core::pipeline::host::KernelCtx;
use mlm_core::{PipelineSpec, Placement, Workload};
use mlm_fleet::{
    admission_sequence, decision_digest, fleet_serve, fleet_serve_host, fleet_trace,
    placement_sequence, Decision, FleetConfig, FleetHostConfig, FleetHostJob, FleetJob,
    FleetTraceConfig, PlacementPolicy,
};
use mlm_serve::{
    heavy_tailed_trace, serve, DeadlineClass, JobRequest, Policy, ServeConfig, TraceConfig,
};
use proptest::prelude::*;

fn machine() -> MachineConfig {
    MachineConfig::knl_7250(MemMode::Flat)
}

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Sjf),
        Just(Policy::FairShare),
    ]
}

fn any_placement_policy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::FirstFit),
        Just(PlacementPolicy::BestFitHbw),
        Just(PlacementPolicy::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A 1-node fleet is `serve`: whatever the trace, queueing policy,
    /// budget, spill flag, and placement policy, the dispatcher drives
    /// the same `NodeSim` state machine through the same operations, so
    /// records and rejections are bit-identical. (`serve` submits every
    /// job non-strict, so the fleet jobs are non-strict here too.)
    #[test]
    fn one_node_fleet_is_bit_identical_to_serve(
        seed in any::<u64>(),
        n_jobs in 1usize..30,
        rate in 0.5f64..6.0,
        policy in any_policy(),
        placement in any_placement_policy(),
        budget_gib in 4u64..=16,
        spill in any::<bool>(),
        steal in any::<bool>(),
    ) {
        let tc = TraceConfig::new(machine(), n_jobs, rate, seed);
        let jobs = heavy_tailed_trace(&tc);

        let mut serve_cfg = ServeConfig::new(machine());
        serve_cfg.policy = policy;
        serve_cfg.mcdram_budget = budget_gib * GIB;
        serve_cfg.spill = spill;
        let single = serve(&serve_cfg, &jobs).unwrap();

        let mut fleet_cfg = FleetConfig::homogeneous(machine(), 1, budget_gib * GIB, spill);
        fleet_cfg.policy = policy;
        fleet_cfg.placement = placement;
        fleet_cfg.steal = steal;
        let fleet_jobs: Vec<FleetJob> = jobs
            .iter()
            .map(|req| FleetJob { req: req.clone(), strict: false, origin: 0 })
            .collect();
        let fleet = fleet_serve(&fleet_cfg, &fleet_jobs).unwrap();

        prop_assert_eq!(fleet.records.len(), single.records.len());
        for (f, s) in fleet.records.iter().zip(&single.records) {
            prop_assert_eq!(f.id, s.id);
            prop_assert_eq!(f.buffer_level, s.buffer_level);
            prop_assert_eq!(f.arrival.to_bits(), s.arrival.to_bits());
            prop_assert_eq!(f.start.to_bits(), s.start.to_bits(), "job {} start", f.id);
            prop_assert_eq!(f.finish.to_bits(), s.finish.to_bits(), "job {} finish", f.id);
        }
        let fleet_rej: Vec<u64> = fleet.rejections.iter().map(|r| r.id).collect();
        let single_rej: Vec<u64> = single.rejections.iter().map(|r| r.id).collect();
        prop_assert_eq!(fleet_rej, single_rej);
        prop_assert_eq!(fleet.steals, 0, "a lone node has nobody to steal from");
        prop_assert_eq!(fleet.fleet.mcdram_high_water, single.fleet.mcdram_high_water);
    }

    /// Work stealing is capacity-safe: across random heterogeneous
    /// fleets, traces, and strictness mixes, no node's MCDRAM high-water
    /// mark ever exceeds its budget, every job is accounted for exactly
    /// once, and the decision log agrees with the steal counter.
    #[test]
    fn stealing_never_violates_any_node_budget(
        seed in any::<u64>(),
        n_nodes in 2usize..=4,
        per_node in 5usize..=30,
        rate in 1.0f64..6.0,
        budgets in proptest::collection::vec(2u64..=16, 4),
        strict_frac in 0.0f64..1.0,
        skew in 0.0f64..0.9,
        spill in any::<bool>(),
        policy in any_policy(),
        placement in any_placement_policy(),
        with_cluster in any::<bool>(),
    ) {
        let mut cfg = FleetConfig::homogeneous(machine(), n_nodes, 16 * GIB, spill);
        for (i, node) in cfg.nodes.iter_mut().enumerate() {
            node.mcdram_budget = budgets[i] * GIB;
        }
        cfg.policy = policy;
        cfg.placement = placement;
        cfg.steal = true;
        if with_cluster {
            cfg.cluster = Some(mlm_cluster::ClusterConfig::omnipath(n_nodes));
        }

        let mut tc = FleetTraceConfig::new(
            TraceConfig::new(machine(), 0, rate, seed),
            n_nodes,
            per_node,
        );
        tc.strict_frac = strict_frac;
        tc.skew = skew;
        let jobs = fleet_trace(&tc);

        let out = fleet_serve(&cfg, &jobs).unwrap();
        prop_assert_eq!(out.records.len() + out.rejections.len(), jobs.len());
        for (ni, (stats, node)) in out.per_node.iter().zip(&cfg.nodes).enumerate() {
            let cap = node.mcdram_budget.min(node.machine.addressable_mcdram());
            prop_assert!(
                stats.mcdram_high_water <= cap,
                "node {} high-water {} exceeds budget {}",
                ni, stats.mcdram_high_water, cap
            );
        }
        let stolen = out
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::Stolen { .. }))
            .count();
        prop_assert_eq!(stolen, out.steals);
        // Strict jobs never run out of a DDR-spilled ring.
        let strict_ids: std::collections::HashSet<u64> =
            jobs.iter().filter(|j| j.strict).map(|j| j.req.id).collect();
        for r in out.records.iter().filter(|r| strict_ids.contains(&r.id)) {
            prop_assert_eq!(r.buffer_level, MemLevel::Mcdram, "strict job {} spilled", r.id);
        }
    }
}

fn demo_spec(total: u64, chunk: u64) -> PipelineSpec {
    PipelineSpec {
        total_bytes: total,
        chunk_bytes: chunk,
        p_in: 1,
        p_out: 1,
        p_comp: 2,
        compute_passes: 1,
        compute_rate: 6.78e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep: false,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn demo_kernel(slice: &mut [i64], _ctx: KernelCtx) {
    for x in slice.iter_mut() {
        *x = x.wrapping_mul(3);
    }
}

/// The acceptance demo: virtual-time and real-thread host modes produce
/// the identical canonical decision sequence — not just equal digests,
/// the actual placement sequence and per-node admission sequences match
/// element for element.
#[test]
fn host_and_vt_modes_make_identical_decisions_on_the_demo_trace() {
    const MIB: u64 = 1 << 20;
    let n = (MIB / 8) as usize;
    let mut fleet = FleetConfig::homogeneous(machine(), 2, 2 * MIB, false);
    fleet.placement = PlacementPolicy::LeastLoaded;
    fleet.policy = Policy::Fifo;

    let vt_jobs: Vec<FleetJob> = (0..6)
        .map(|i| FleetJob {
            req: JobRequest::new(i, 0.0, DeadlineClass::Standard, demo_spec(MIB, MIB / 4)),
            strict: true,
            origin: 0,
        })
        .collect();
    let host_jobs: Vec<FleetHostJob> = (0..6)
        .map(|i| FleetHostJob {
            id: i,
            class: DeadlineClass::Standard,
            strict: true,
            spec: demo_spec(MIB, MIB / 4),
            data: (0..n as i64).map(|x| x * 7 + i as i64).collect(),
        })
        .collect();

    let vt = fleet_serve(&fleet, &vt_jobs).unwrap();
    let host_cfg = FleetHostConfig {
        fleet: fleet.clone(),
        host_threads: 8,
        workers: 2,
    };
    let host = fleet_serve_host(&host_cfg, host_jobs, demo_kernel).unwrap();

    assert_eq!(host.results.len(), 6);
    assert!(host.rejected.is_empty());
    for r in &host.results {
        let expect: Vec<i64> = (0..n as i64).map(|x| (x * 7 + r.id as i64) * 3).collect();
        assert_eq!(r.data, expect, "job {} output wrong", r.id);
    }

    assert_eq!(
        placement_sequence(&vt.decisions),
        placement_sequence(&host.decisions)
    );
    for node in 0..2 {
        assert_eq!(
            admission_sequence(&vt.decisions, node),
            admission_sequence(&host.decisions, node),
            "node {node} admission sequence diverges"
        );
    }
    assert_eq!(
        decision_digest(&vt.decisions, 2),
        decision_digest(&host.decisions, 2)
    );
}
