//! Cross-crate simulator invariants: conservation, determinism, and mode
//! constraints for full paper-scale experiments.

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{MemLevel, Simulator};
use mlm_core::sort::sim::build_sort_program;
use mlm_core::{Calibration, InputOrder, SortAlgorithm, SortWorkload};

const N: u64 = 2_000_000_000;

fn machine_for(alg: SortAlgorithm) -> MachineConfig {
    MachineConfig::knl_7250(if alg.needs_cache_mode() {
        MemMode::Cache
    } else {
        MemMode::Flat
    })
}

#[test]
fn sort_programs_move_plausible_traffic() {
    let cal = Calibration::default();
    let w = SortWorkload::int64(N, InputOrder::Random);
    for alg in SortAlgorithm::TABLE1 {
        let machine = machine_for(alg);
        let prog = build_sort_program(&machine, &cal, w, alg, 1_000_000_000, 256).unwrap();
        let r = Simulator::new(machine).run(&prog).unwrap();
        let data_bytes = w.bytes();
        // Every variant must at least read and write the key array once.
        let total = r.ddr_traffic() + r.mcdram_traffic();
        assert!(
            total >= 2 * data_bytes,
            "{alg:?}: total traffic {total} < two passes over the data"
        );
        // And nothing should move more than ~50 passes worth.
        assert!(total < 50 * data_bytes, "{alg:?}: absurd traffic {total}");
        assert!(r.makespan > 0.0 && r.makespan.is_finite());
        // Utilization is a valid fraction on both buses.
        for u in r.utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "{alg:?}: utilization {u}");
        }
    }
}

#[test]
fn mlm_sort_moves_less_ddr_traffic_than_gnu() {
    // The mechanism behind the speedup: chunking moves compute traffic
    // onto MCDRAM, relieving DDR (Bender et al.'s 2.5x claim).
    let cal = Calibration::default();
    let w = SortWorkload::int64(N, InputOrder::Random);
    let gnu_machine = machine_for(SortAlgorithm::GnuFlat);
    let gnu = Simulator::new(gnu_machine.clone())
        .run(&build_sort_program(&gnu_machine, &cal, w, SortAlgorithm::GnuFlat, N, 256).unwrap())
        .unwrap();
    let mlm_machine = machine_for(SortAlgorithm::MlmSort);
    let mlm = Simulator::new(mlm_machine.clone())
        .run(
            &build_sort_program(
                &mlm_machine,
                &cal,
                w,
                SortAlgorithm::MlmSort,
                1_000_000_000,
                256,
            )
            .unwrap(),
        )
        .unwrap();
    assert!(
        gnu.traffic_on(MemLevel::Ddr).total() > 2 * mlm.traffic_on(MemLevel::Ddr).total(),
        "GNU DDR {} vs MLM DDR {}",
        gnu.ddr_traffic(),
        mlm.ddr_traffic()
    );
    // MLM makes it up in MCDRAM traffic.
    assert!(mlm.mcdram_traffic() > gnu.mcdram_traffic());
}

#[test]
fn paper_scale_runs_are_deterministic() {
    let cal = Calibration::default();
    let w = SortWorkload::int64(N, InputOrder::Reverse);
    let machine = machine_for(SortAlgorithm::MlmImplicit);
    let prog = build_sort_program(&machine, &cal, w, SortAlgorithm::MlmImplicit, N, 256).unwrap();
    let sim = Simulator::new(machine);
    let a = sim.run(&prog).unwrap();
    let b = sim.run(&prog).unwrap();
    assert_eq!(a, b);
}

#[test]
fn thread_count_scaling_is_sane() {
    // More threads never makes the simulated sort slower (work-conserving
    // arbitration, no modeled oversubscription penalty beyond the rates).
    let cal = Calibration::default();
    let w = SortWorkload::int64(N, InputOrder::Random);
    let machine = machine_for(SortAlgorithm::MlmSort);
    let mut prev = f64::INFINITY;
    for threads in [64usize, 128, 256] {
        let prog = build_sort_program(
            &machine,
            &cal,
            w,
            SortAlgorithm::MlmSort,
            1_000_000_000,
            threads,
        )
        .unwrap();
        let t = Simulator::new(machine.clone()).run(&prog).unwrap().makespan;
        assert!(t <= prev * 1.001, "threads={threads}: {t} > {prev}");
        prev = t;
    }
}

#[test]
fn hybrid_mode_supports_mlm_sort_with_smaller_chunks() {
    let cal = Calibration::default();
    let machine = MachineConfig::knl_7250(MemMode::Hybrid {
        cache_fraction: 0.5,
    });
    let w = SortWorkload::int64(N, InputOrder::Random);
    // 1B elements = 8 GB = exactly the hybrid flat share: fits.
    let ok = build_sort_program(
        &machine,
        &cal,
        w,
        SortAlgorithm::MlmSort,
        1_000_000_000,
        256,
    );
    assert!(ok.is_ok());
    // 1.5B elements = 12 GB > 8 GB flat share: rejected.
    let too_big = build_sort_program(
        &machine,
        &cal,
        w,
        SortAlgorithm::MlmSort,
        1_500_000_000,
        256,
    );
    assert!(too_big.is_err());
    // §4.2: hybrid at the same (feasible) chunk size performs like flat.
    let hybrid_t = Simulator::new(machine.clone())
        .run(&ok.unwrap())
        .unwrap()
        .makespan;
    let flat_machine = MachineConfig::knl_7250(MemMode::Flat);
    let flat_prog = build_sort_program(
        &flat_machine,
        &cal,
        w,
        SortAlgorithm::MlmSort,
        1_000_000_000,
        256,
    )
    .unwrap();
    let flat_t = Simulator::new(flat_machine)
        .run(&flat_prog)
        .unwrap()
        .makespan;
    assert!(
        (hybrid_t / flat_t - 1.0).abs() < 0.15,
        "hybrid {hybrid_t:.2} vs flat {flat_t:.2} at equal chunk size"
    );
}

#[test]
fn stream_calibration_holds_under_modes() {
    // The simulated machine's STREAM numbers must not drift when modes
    // change (flat MCDRAM unavailable in cache mode, but DDR unchanged).
    for mode in [MemMode::Flat, MemMode::Cache] {
        let machine = MachineConfig::knl_7250(mode);
        let r = mlm_stream::sim::sim_kernel(
            &machine,
            MemLevel::Ddr,
            mlm_stream::StreamKernel::Triad,
            10_000_000,
            64,
        )
        .unwrap();
        assert!((r.bandwidth - 90e9).abs() < 1e6);
    }
}
