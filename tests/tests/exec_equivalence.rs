//! Cross-backend execution equivalence for the unified `mlm-exec` layer.
//!
//! Property under test: the orchestrator in [`mlm_exec::drive`] owns the
//! chunk schedule, and every backend — host thread pools, the op-level
//! simulator, the recorder — merely interprets it. Concretely:
//!
//! 1. Lockstep and dataflow host runs of the same spec produce
//!    bit-identical output (the schedule changes overlap, never results).
//! 2. A [`RecordingBackend`] trace of the drive walk is identical whether
//!    it wraps the null backend or the sim lowering of the same
//!    [`PipelineSpec`] — i.e. the sim executes exactly the schedule the
//!    host adapters interpret.
//! 3. Under lockstep, chunks complete (copy-out) in order 0, 1, 2, …

use proptest::prelude::*;

use mlm_core::pipeline::host::{run_host_pipeline, run_host_stencil, StencilView};
use mlm_core::pipeline::sim::SimBackend;
use mlm_exec::{
    drive, Event, NullBackend, PipelineSpec, Placement, RecordingBackend, Stage, Workload,
    RING_SLOTS,
};
use parsort::pool::WorkPool;

const ELEM: usize = std::mem::size_of::<i64>();

/// A host-executable spec over `total_elems` i64 elements. Rates and
/// `data_addr` are sim-only fields; the host ignores them.
fn spec_for(
    total_elems: usize,
    chunk_elems: usize,
    p_in: usize,
    p_out: usize,
    p_comp: usize,
    lockstep: bool,
) -> PipelineSpec {
    PipelineSpec {
        total_bytes: (total_elems * ELEM) as u64,
        chunk_bytes: (chunk_elems * ELEM) as u64,
        p_in,
        p_out,
        p_comp,
        compute_passes: 1,
        compute_rate: 2e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    }
}

/// The kernel used everywhere below: a pure function of element value and
/// *global* position, so the correct output is independent of how the
/// pipeline slices chunks across threads.
fn kernel(slice: &mut [i64], ctx: mlm_core::pipeline::host::KernelCtx) {
    for (i, v) in slice.iter_mut().enumerate() {
        *v = v
            .wrapping_mul(31)
            .wrapping_add((ctx.global_offset + i) as i64);
    }
}

/// What the pipeline must compute, derived element-by-element.
fn reference(data: &[i64]) -> Vec<i64> {
    data.iter()
        .enumerate()
        .map(|(i, v)| v.wrapping_mul(31).wrapping_add(i as i64))
        .collect()
}

/// The stencil analogue of [`kernel`]: a 3-point stencil at halo
/// distance `h` with zero boundary, expressed against the staged
/// [`StencilView`] — so a stale or missing halo changes the output.
fn stencil_kernel(
    chunk_elems: usize,
    h: usize,
) -> impl Fn(StencilView<'_, i64>, &mut [i64], mlm_core::pipeline::host::KernelCtx) {
    move |view, out, ctx| {
        let l0 = ctx.global_offset - ctx.chunk * chunk_elems;
        for (i, o) in out.iter_mut().enumerate() {
            let l = l0 + i;
            let left = if l >= h {
                view.mid[l - h]
            } else if view.left.is_empty() {
                0
            } else {
                view.left[l]
            };
            let j = l + h;
            let right = if j < view.mid.len() {
                view.mid[j]
            } else {
                view.right.get(j - view.mid.len()).copied().unwrap_or(0)
            };
            *o = view.mid[l]
                .wrapping_mul(31)
                .wrapping_sub(left)
                .wrapping_add(right.wrapping_mul(7));
        }
    }
}

/// What the stencil pipeline must compute, derived element-by-element
/// from the flat grid (no chunking involved).
fn stencil_reference(data: &[i64], h: usize) -> Vec<i64> {
    (0..data.len())
        .map(|g| {
            let l = if g >= h { data[g - h] } else { 0 };
            let r = data.get(g + h).copied().unwrap_or(0);
            data[g]
                .wrapping_mul(31)
                .wrapping_sub(l)
                .wrapping_add(r.wrapping_mul(7))
        })
        .collect()
}

/// Chunk indices of the trace's actions for one stage, in issue order.
fn stage_order(events: &[Event], stage: Stage) -> Vec<usize> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Action { action, .. } if action.stage == stage => Some(action.chunk),
            _ => None,
        })
        .collect()
}

/// The drive walk of `spec`, recorded over the null backend.
fn null_trace(spec: &PipelineSpec) -> Vec<Event> {
    let mut rec = RecordingBackend::new(NullBackend::new());
    drive(&mut rec, spec).expect("null backend executes every placement");
    let (_, events) = rec.into_parts();
    events
}

/// The drive walk of `spec`, recorded while the sim lowering runs
/// underneath — the exact schedule `build_program` lowers to ops.
fn sim_trace(spec: &PipelineSpec) -> Vec<Event> {
    let mut rec = RecordingBackend::new(SimBackend::new(spec).expect("sim accepts the spec"));
    drive(&mut rec, spec).expect("sim backend executes the spec");
    let (_, events) = rec.into_parts();
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (1) Lockstep and dataflow host runs are bit-identical, and both
    /// match the positional reference.
    #[test]
    fn lockstep_and_dataflow_host_runs_are_bit_identical(
        chunk_elems in 1usize..48,
        n_full in 1usize..6,
        tail in 0usize..48,
        p_in in 1usize..3,
        p_out in 1usize..3,
        p_comp in 1usize..4,
        seed in any::<u64>(),
    ) {
        let tail = tail % chunk_elems.max(1);
        let total = n_full * chunk_elems + tail;
        let data: Vec<i64> = (0..total)
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as i64)
            .collect();
        let pool = WorkPool::new(p_in.max(p_out).max(p_comp));

        let lock = spec_for(total, chunk_elems, p_in, p_out, p_comp, true);
        let flow = PipelineSpec { lockstep: false, ..lock.clone() };

        let mut out_lock = vec![0i64; total];
        let mut out_flow = vec![0i64; total];
        let s_lock = run_host_pipeline(&pool, &lock, &data, &mut out_lock, kernel);
        let s_flow = run_host_pipeline(&pool, &flow, &data, &mut out_flow, kernel);

        prop_assert_eq!(&out_lock, &out_flow, "schedules must not change results");
        prop_assert_eq!(&out_lock, &reference(&data));
        prop_assert_eq!(s_lock.chunks, s_flow.chunks);
        prop_assert_eq!(s_lock.chunks, total.div_ceil(chunk_elems));
    }

    /// (2) The recorded schedule is backend-independent: the trace the sim
    /// lowering is driven with equals the null-backend trace, for both
    /// lockstep and dataflow variants of the same spec.
    #[test]
    fn trace_matches_sim_lowering_of_the_same_spec(
        chunk_elems in 1usize..48,
        n_full in 1usize..6,
        tail in 0usize..48,
        p_in in 1usize..3,
        p_out in 1usize..3,
        p_comp in 1usize..4,
        lockstep in any::<bool>(),
    ) {
        let tail = tail % chunk_elems.max(1);
        let total = n_full * chunk_elems + tail;
        let spec = spec_for(total, chunk_elems, p_in, p_out, p_comp, lockstep);

        let null = null_trace(&spec);
        let sim = sim_trace(&spec);
        prop_assert_eq!(&null, &sim, "sim must be lowered from the identical schedule");

        // Per-chunk action accounting: each chunk is copied in, computed
        // on, and copied out exactly once, in that per-chunk order.
        let n = spec.n_chunks();
        for stage in [Stage::CopyIn, Stage::Compute, Stage::CopyOut] {
            let mut chunks = stage_order(&null, stage);
            chunks.sort_unstable();
            prop_assert_eq!(chunks, (0..n).collect::<Vec<_>>());
        }
    }

    /// (3) Under lockstep, chunk completion order is 0, 1, 2, … — the
    /// copy-out sequence the paper's step schedule guarantees — and every
    /// step closes with a barrier the next step's actions depend on.
    #[test]
    fn lockstep_completes_chunks_in_order(
        chunk_elems in 1usize..48,
        n_full in 1usize..6,
        p_in in 1usize..3,
        p_out in 1usize..3,
        p_comp in 1usize..4,
    ) {
        let total = n_full * chunk_elems;
        let spec = spec_for(total, chunk_elems, p_in, p_out, p_comp, true);
        let events = null_trace(&spec);

        let outs = stage_order(&events, Stage::CopyOut);
        prop_assert_eq!(outs, (0..spec.n_chunks()).collect::<Vec<_>>());

        // Every action after the first barrier names that step's barrier
        // as a dependency: the lockstep trace is a strict step sequence.
        let mut last_barrier: Option<usize> = None;
        for (idx, event) in events.iter().enumerate() {
            match event {
                Event::Action { deps, .. } => match last_barrier {
                    Some(b) => prop_assert_eq!(deps.as_slice(), &[b]),
                    None => prop_assert!(deps.is_empty()),
                },
                Event::Barrier { .. } => last_barrier = Some(idx),
                Event::Finish => {}
            }
        }
    }

    /// Dataflow deps are pure chunk edges: compute waits on its copy-in,
    /// copy-out on its compute, and copy-in of chunk `c` recycles the ring
    /// slot freed by copy-out of chunk `c - RING_SLOTS`.
    #[test]
    fn dataflow_trace_orders_by_chunk_edges_only(
        chunk_elems in 1usize..48,
        n_full in 4usize..8,
        p_comp in 1usize..4,
    ) {
        let total = n_full * chunk_elems;
        let spec = spec_for(total, chunk_elems, 1, 1, p_comp, false);
        let events = null_trace(&spec);

        prop_assert!(
            !events.iter().any(|e| matches!(e, Event::Barrier { .. })),
            "dataflow schedules have no step barriers"
        );

        // Map (stage, chunk) -> event index to resolve dependency targets.
        let at = |stage: Stage, chunk: usize| -> usize {
            events
                .iter()
                .position(|e| matches!(
                    e,
                    Event::Action { action, .. }
                        if action.stage == stage && action.chunk == chunk
                ))
                .expect("every chunk action is recorded")
        };
        for (idx, event) in events.iter().enumerate() {
            if let Event::Action { action, deps } = event {
                let expect: Vec<usize> = match action.stage {
                    Stage::CopyIn if action.chunk >= RING_SLOTS => {
                        vec![at(Stage::CopyOut, action.chunk - RING_SLOTS)]
                    }
                    Stage::CopyIn => Vec::new(),
                    Stage::Compute => vec![at(Stage::CopyIn, action.chunk)],
                    Stage::CopyOut => vec![at(Stage::Compute, action.chunk)],
                };
                prop_assert_eq!(deps, &expect, "event {} has wrong deps", idx);
            }
        }
    }

    /// (1, stencil) Lockstep and dataflow stencil runs are bit-identical
    /// and both match the flat-grid reference — halo bytes staged through
    /// the split-buffer ring equal the neighbours' own input everywhere,
    /// including across ragged tails shorter than the halo.
    #[test]
    fn stencil_host_runs_are_bit_identical_across_schedules(
        chunk_elems in 2usize..48,
        n_full in 1usize..6,
        tail in 0usize..48,
        h_frac in 1usize..48,
        p_in in 1usize..3,
        p_out in 1usize..3,
        p_comp in 1usize..4,
        seed in any::<u64>(),
    ) {
        let tail = tail % chunk_elems;
        let h = 1 + h_frac % (chunk_elems - 1).max(1); // 1 <= h < chunk_elems
        let total = n_full * chunk_elems + tail;
        let data: Vec<i64> = (0..total)
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as i64)
            .collect();
        let pool = WorkPool::new(p_in.max(p_out).max(p_comp));

        let mut lock = spec_for(total, chunk_elems, p_in, p_out, p_comp, true);
        lock.workload = Workload::Stencil { halo_bytes: (h * ELEM) as u64 };
        let flow = PipelineSpec { lockstep: false, ..lock.clone() };

        let mut out_lock = vec![0i64; total];
        let mut out_flow = vec![0i64; total];
        let s_lock = run_host_stencil(&pool, &lock, &data, &mut out_lock, stencil_kernel(chunk_elems, h));
        let s_flow = run_host_stencil(&pool, &flow, &data, &mut out_flow, stencil_kernel(chunk_elems, h));

        prop_assert_eq!(&out_lock, &out_flow, "schedules must not change results");
        prop_assert_eq!(&out_lock, &stencil_reference(&data, h));
        prop_assert_eq!(s_lock.chunks, s_flow.chunks);
        prop_assert_eq!(s_lock.chunks, total.div_ceil(chunk_elems));
    }

    /// (2, stencil) The recorded stencil schedule is backend-independent:
    /// the trace the sim lowering is driven with equals the null-backend
    /// trace, and per-chunk action accounting holds on the deeper ring.
    #[test]
    fn stencil_trace_matches_sim_lowering_of_the_same_spec(
        chunk_elems in 2usize..48,
        n_full in 1usize..6,
        tail in 0usize..48,
        h_frac in 1usize..48,
        p_comp in 1usize..4,
        lockstep in any::<bool>(),
    ) {
        let tail = tail % chunk_elems;
        let h = 1 + h_frac % (chunk_elems - 1).max(1);
        let total = n_full * chunk_elems + tail;
        let mut spec = spec_for(total, chunk_elems, 1, 1, p_comp, lockstep);
        spec.workload = Workload::Stencil { halo_bytes: (h * ELEM) as u64 };

        let null = null_trace(&spec);
        let sim = sim_trace(&spec);
        prop_assert_eq!(&null, &sim, "sim must be lowered from the identical schedule");

        let n = spec.n_chunks();
        for stage in [Stage::CopyIn, Stage::Compute, Stage::CopyOut] {
            let mut chunks = stage_order(&null, stage);
            chunks.sort_unstable();
            prop_assert_eq!(chunks, (0..n).collect::<Vec<_>>());
        }
    }
}
