//! Cross-crate property tests: the full MLM-sort stack equals std sort on
//! arbitrary inputs; pipelines preserve data; the model and simulator obey
//! their invariants for arbitrary parameters.

use mlm_core::merge_bench::merge_kernel;
use mlm_core::model::ModelParams;
use mlm_core::pipeline::host::{
    run_host_pipeline, run_host_pipeline_dataflow, HostStagePools, KernelCtx,
};
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};
use mlm_core::sort::host::mlm_sort;
use parsort::pool::WorkPool;
use proptest::prelude::*;

/// A kernel whose output depends on the global element position: any
/// disagreement between the two schedules' chunk geometry or offsets shows
/// up as a value mismatch, not just a permutation.
fn mix_kernel(slice: &mut [i64], ctx: KernelCtx) {
    for (i, v) in slice.iter_mut().enumerate() {
        *v = v
            .wrapping_mul(31)
            .wrapping_add((ctx.global_offset + i) as i64);
    }
}

fn host_spec(n_elems: usize, chunk_elems: usize, p: (usize, usize, usize)) -> PipelineSpec {
    PipelineSpec {
        total_bytes: (n_elems * 8) as u64,
        chunk_bytes: (chunk_elems * 8) as u64,
        p_in: p.0,
        p_out: p.1,
        p_comp: p.2,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mlm_sort_equals_std_sort(
        mut data in proptest::collection::vec(any::<i64>(), 0..5000),
        mega in 1usize..2000,
        explicit in any::<bool>(),
        threads in 1usize..6,
    ) {
        let pool = WorkPool::new(threads);
        let mut expect = data.clone();
        expect.sort_unstable();
        mlm_sort(&pool, &mut data, mega, explicit);
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn merge_kernel_preserves_multiset(
        data in proptest::collection::vec(any::<i32>(), 0..2000),
        repeats in 0u32..6,
    ) {
        let mut v: Vec<i32> = data.clone();
        merge_kernel(&mut v, repeats);
        let mut a = data;
        let mut b = v;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pipeline_identity_kernel_is_a_copy(
        data in proptest::collection::vec(any::<i64>(), 1..4000),
        chunk_elems in 1usize..1500,
        p_in in 1usize..4,
        p_out in 1usize..4,
        p_comp in 1usize..4,
    ) {
        let pool = WorkPool::new(4);
        let spec = PipelineSpec {
            total_bytes: (data.len() * 8) as u64,
            chunk_bytes: (chunk_elems * 8) as u64,
            p_in,
            p_out,
            p_comp,
            compute_passes: 1,
            compute_rate: 1e9,
            copy_rate: 1e9,
            placement: Placement::Hbw,
            lockstep: true,
            data_addr: 0,
            workload: Workload::Map,
        };
        let mut out = vec![0i64; data.len()];
        run_host_pipeline(&pool, &spec, &data, &mut out, |_s, _c| {});
        prop_assert_eq!(out, data);
    }

    #[test]
    fn model_times_are_positive_and_monotone_in_passes(
        copy_threads in 1usize..100,
        passes in 1u32..100,
    ) {
        let m = ModelParams::paper_table2();
        if let Some(t1) = m.t_total(copy_threads, passes) {
            prop_assert!(t1 > 0.0 && t1.is_finite());
            if let Some(t2) = m.t_total(copy_threads, passes + 1) {
                prop_assert!(t2 >= t1, "more passes cannot be faster");
            }
        }
    }

    #[test]
    fn model_copy_time_monotone_in_threads(p in 1usize..126) {
        let m = ModelParams::paper_table2();
        let t1 = m.t_copy(p, p);
        let t2 = m.t_copy(p + 1, p + 1);
        prop_assert!(t2 <= t1 * (1.0 + 1e-12), "more copy threads cannot slow copying");
    }

    #[test]
    fn optimal_copy_threads_monotone_in_passes(passes in 1u32..64) {
        let m = ModelParams::paper_table2();
        let (a, _) = m.optimal_copy_threads(passes);
        let (b, _) = m.optimal_copy_threads(passes * 2);
        prop_assert!(b <= a, "doubling compute cannot raise the copy-thread optimum");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dataflow_host_matches_lockstep_bit_for_bit(
        data in proptest::collection::vec(any::<i64>(), 1..4000),
        chunk_elems in 1usize..1500,
        p_in in 1usize..4,
        p_out in 1usize..4,
        p_comp in 1usize..4,
        threads in 1usize..6,
    ) {
        let pool = WorkPool::new(threads);
        let spec = host_spec(data.len(), chunk_elems, (p_in, p_out, p_comp));

        let mut out_lock = vec![0i64; data.len()];
        run_host_pipeline(&pool, &spec, &data, &mut out_lock, mix_kernel);

        let mut spec_flow = spec.clone();
        spec_flow.lockstep = false;
        let mut out_flow = vec![0i64; data.len()];
        run_host_pipeline(&pool, &spec_flow, &data, &mut out_flow, mix_kernel);

        prop_assert_eq!(out_lock, out_flow);
    }

    #[test]
    fn dataflow_survives_tiny_chunks_and_oversubscribed_pools(
        data in proptest::collection::vec(any::<i64>(), 1..500),
        chunk_elems in 1usize..4,
        p_in in 1usize..9,
        p_out in 1usize..9,
        p_comp in 1usize..9,
    ) {
        // Chunks of 1-3 elements cycle hundreds of times through the
        // 3-slot ring while every stage pool is oversubscribed relative
        // to the work — the regime where ring-protocol races would bite.
        let pools = HostStagePools::new(p_in, p_comp, p_out);
        let mut spec = host_spec(data.len(), chunk_elems, (p_in, p_out, p_comp));
        spec.lockstep = false;
        let mut out = vec![0i64; data.len()];
        let stats = run_host_pipeline_dataflow(&pools, &spec, &data, &mut out, mix_kernel);
        prop_assert_eq!(stats.chunks, data.len().div_ceil(chunk_elems));

        let mut expect = data;
        for (i, v) in expect.iter_mut().enumerate() {
            *v = v.wrapping_mul(31).wrapping_add(i as i64);
        }
        prop_assert_eq!(out, expect);
    }
}
