//! Integration tests asserting the paper's qualitative claims hold on the
//! simulated machine — the "shape" checks EXPERIMENTS.md reports.

use mlm_bench::experiments::{bender_check, fig6, fig7, simulate_sort, table1, table3};
use mlm_bench::BILLION;
use mlm_core::{Calibration, InputOrder, SortAlgorithm};

fn cal() -> Calibration {
    Calibration::default()
}

fn sim(n: u64, order: InputOrder, alg: SortAlgorithm) -> f64 {
    simulate_sort(&cal(), n, order, alg).unwrap()
}

/// Abstract: "up to a 1.9X speedup for sort when the problem does not fit
/// in MCDRAM over an OpenMP GNU sort that does not use MCDRAM"; conclusion:
/// "approximately 1.6-1.9X (depending on input order)".
#[test]
fn headline_speedup_band() {
    let mut best_speedup = 0.0f64;
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            let flat = sim(n, order, SortAlgorithm::GnuFlat);
            for alg in [SortAlgorithm::MlmSort, SortAlgorithm::MlmImplicit] {
                let mega_ok = sim(n, order, alg);
                let speedup = flat / mega_ok;
                assert!(
                    speedup > 1.15,
                    "{n} {order:?} {alg:?}: MLM must clearly beat GNU-flat, got {speedup:.2}"
                );
                best_speedup = best_speedup.max(speedup);
            }
        }
    }
    assert!(
        (1.5..2.2).contains(&best_speedup),
        "peak speedup {best_speedup:.2} outside the paper's 1.6-1.9x neighbourhood"
    );
}

/// §4.1: "algorithms designed for flat mode, used with the MCDRAM in cache
/// mode, give significant performance gains over an unchunked
/// implementation" — MLM-implicit beats GNU-cache everywhere.
#[test]
fn implicit_chunking_beats_unchunked_cache_mode() {
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            let gnu_cache = sim(n, order, SortAlgorithm::GnuCache);
            let implicit = sim(n, order, SortAlgorithm::MlmImplicit);
            assert!(
                implicit < gnu_cache,
                "{n} {order:?}: implicit {implicit:.2} !< GNU-cache {gnu_cache:.2}"
            );
        }
    }
}

/// §4.1: explicit flat-mode placement improves on cache mode for data sets
/// exceeding MCDRAM — MLM-sort beats GNU-cache everywhere.
#[test]
fn explicit_flat_mode_beats_system_managed_cache() {
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            let gnu_cache = sim(n, order, SortAlgorithm::GnuCache);
            let mlm = sim(n, order, SortAlgorithm::MlmSort);
            assert!(mlm < gnu_cache, "{n} {order:?}: {mlm:.2} !< {gnu_cache:.2}");
        }
    }
}

/// Hardware cache mode helps even unchunked code (Fig. 6: GNU-cache bars
/// above 1.0).
#[test]
fn gnu_cache_beats_gnu_flat() {
    for &n in &[2 * BILLION, 4 * BILLION, 6 * BILLION] {
        for order in InputOrder::PAPER {
            let flat = sim(n, order, SortAlgorithm::GnuFlat);
            let cache = sim(n, order, SortAlgorithm::GnuCache);
            assert!(cache < flat, "{n} {order:?}: {cache:.2} !< {flat:.2}");
        }
    }
}

/// MLM's restructuring alone (no MCDRAM at all) already beats GNU — the
/// paper's MLM-ddr rows.
#[test]
fn mlm_structure_wins_without_mcdram() {
    for &n in &[2 * BILLION, 4 * BILLION] {
        for order in InputOrder::PAPER {
            let gnu = sim(n, order, SortAlgorithm::GnuFlat);
            let ddr = sim(n, order, SortAlgorithm::MlmDdr);
            assert!(ddr < gnu, "{n} {order:?}: {ddr:.2} !< {gnu:.2}");
        }
    }
}

/// Reverse-sorted input is faster than random for every variant
/// (Table 1's two halves).
#[test]
fn structured_input_is_faster() {
    for alg in SortAlgorithm::TABLE1 {
        let r = sim(2 * BILLION, InputOrder::Random, alg);
        let v = sim(2 * BILLION, InputOrder::Reverse, alg);
        assert!(v < r, "{alg:?}: reverse {v:.2} !< random {r:.2}");
    }
}

/// Figure 7's two claims: MLM-sort prefers the largest feasible chunk and
/// cannot exceed MCDRAM; MLM-implicit's best megachunk is the problem size.
#[test]
fn fig7_chunk_size_shape() {
    let points = fig7(&cal());
    let mlm: Vec<_> = points
        .iter()
        .filter(|p| p.algorithm == SortAlgorithm::MlmSort)
        .collect();
    // Feasible up to 2B elements (16 GB = MCDRAM), infeasible past it.
    for p in &mlm {
        if p.megachunk_elems <= 2 * BILLION {
            assert!(p.seconds.is_some(), "mega {} should fit", p.megachunk_elems);
        } else {
            assert!(
                p.seconds.is_none(),
                "mega {} must exceed MCDRAM",
                p.megachunk_elems
            );
        }
    }
    // Largest feasible chunk is (near-)optimal: no small chunk beats it by
    // more than noise, and the smallest chunk is strictly worse.
    let t_small = mlm.first().unwrap().seconds.unwrap();
    let t_big = mlm.iter().rev().find_map(|p| p.seconds).unwrap();
    assert!(
        t_big < t_small,
        "large chunks must win: {t_big:.2} !< {t_small:.2}"
    );

    let implicit: Vec<_> = points
        .iter()
        .filter(|p| p.algorithm == SortAlgorithm::MlmImplicit)
        .collect();
    let best_impl = implicit
        .iter()
        .min_by(|a, b| a.seconds.unwrap().total_cmp(&b.seconds.unwrap()))
        .unwrap();
    assert_eq!(
        best_impl.megachunk_elems,
        6 * BILLION,
        "implicit keeps improving as megachunk size exceeds MCDRAM"
    );
}

/// Table 3: both the model and the simulated empirical optimum decrease
/// monotonically with repeats, and the asymptotes match the paper exactly.
#[test]
fn table3_shape() {
    let rows = table3(&cal()).unwrap();
    assert_eq!(rows.len(), 7);
    for w in rows.windows(2) {
        assert!(
            w[1].model <= w[0].model,
            "model column must be non-increasing"
        );
        assert!(
            w[1].empirical <= w[0].empirical,
            "empirical column must be non-increasing"
        );
    }
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert_eq!(first.model, 10, "low-repeat model optimum (paper: 10)");
    assert!(
        first.empirical >= 16,
        "low-repeat empirical optimum is large (paper: 16)"
    );
    assert_eq!(last.model, 1, "high-repeat model optimum (paper: 1)");
    assert_eq!(
        last.empirical, 1,
        "high-repeat empirical optimum (paper: 1)"
    );
    // Every row within one power-of-two step of the paper's empirical column.
    for r in &rows {
        let ratio = r.empirical as f64 / r.paper_empirical as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "repeats {}: empirical {} vs paper {}",
            r.repeats,
            r.empirical,
            r.paper_empirical
        );
    }
}

/// §2.3: corroborate Bender et al. — chunking reduces DDR traffic by
/// roughly 2.5x, and the basic chunked algorithm gains over GNU-flat but
/// not over cache mode (§4: "no advantage over GNU parallel sort run in
/// hardware cache mode").
#[test]
fn bender_corroboration() {
    let b = bender_check(&cal()).unwrap();
    assert!(
        (2.0..4.5).contains(&b.ddr_traffic_reduction),
        "DDR traffic reduction {:.2} not in the ~2.5x neighbourhood",
        b.ddr_traffic_reduction
    );
    assert!(
        b.basic_speedup > 1.0,
        "basic chunking must gain over GNU-flat, got {:.2}",
        b.basic_speedup
    );
    let gnu_cache = sim(2 * BILLION, InputOrder::Random, SortAlgorithm::GnuCache);
    let gnu_flat = sim(2 * BILLION, InputOrder::Random, SortAlgorithm::GnuFlat);
    let basic = gnu_flat / b.basic_speedup;
    assert!(
        basic > gnu_cache * 0.9,
        "basic chunked ({basic:.2}) should NOT clearly beat GNU-cache ({gnu_cache:.2})"
    );
}

/// Every simulated Table-1 cell lands within 2x of the paper's measurement
/// (absolute accuracy), and the full-table correlation is strong.
#[test]
fn table1_absolute_accuracy() {
    let rows = table1(&cal()).unwrap();
    assert_eq!(rows.len(), 30);
    let mut log_err_sum = 0.0f64;
    let mut worst: f64 = 1.0;
    for r in &rows {
        // Skip the paper's 6B-random MLM-ddr transcription artifact.
        if r.elements == 6 * BILLION
            && r.order == InputOrder::Random
            && r.algorithm == SortAlgorithm::MlmDdr
        {
            continue;
        }
        let ratio = r.sim_seconds / r.paper_mean;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{:?} {} {:?}: sim {:.2} vs paper {:.2}",
            r.algorithm,
            r.elements,
            r.order,
            r.sim_seconds,
            r.paper_mean
        );
        log_err_sum += ratio.ln().abs();
        worst = worst.max(ratio.max(1.0 / ratio));
    }
    let geo_mean_err = (log_err_sum / 29.0).exp();
    assert!(
        geo_mean_err < 1.25,
        "geometric-mean |error| {geo_mean_err:.3} should be under 25%"
    );
}

/// Figure 6 consistency: GNU-flat normalizes to exactly 1.0 and the sim
/// speedup of the winning variant tracks the paper's within 35%.
#[test]
fn fig6_speedups_track_paper() {
    let rows = table1(&cal()).unwrap();
    let bars = fig6(&rows);
    for b in &bars {
        if b.algorithm == SortAlgorithm::GnuFlat {
            assert!((b.sim_speedup - 1.0).abs() < 1e-12);
            continue;
        }
        let ratio = b.sim_speedup / b.paper_speedup;
        // The 6B MLM-ddr paper artifact aside, speedups track.
        if b.elements == 6 * BILLION && b.algorithm == SortAlgorithm::MlmDdr {
            continue;
        }
        assert!(
            (0.6..1.7).contains(&ratio),
            "{:?} {} {:?}: sim speedup {:.2} vs paper {:.2}",
            b.algorithm,
            b.elements,
            b.order,
            b.sim_speedup,
            b.paper_speedup
        );
    }
}
