//! Fault-injection hooks exercised against the *real* host pipeline.
//!
//! `mlm_exec::fuzz` injects kernel panics into its modeled executor;
//! `mlm_core::pipeline::fault` (behind the `fuzz` feature, which this
//! test crate enables) arms the same fault in the real host backends.
//! This file lives in its own integration-test binary because the hook is
//! process-global: Rust runs each tests/*.rs file as a separate process,
//! and the tests here serialize around the armed state themselves.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use mlm_core::pipeline::fault::{arm_compute_panic, disarm};
use mlm_core::pipeline::host::{
    run_host_pipeline, run_host_pipeline_dataflow, HostStagePools, KernelCtx,
};
use mlm_core::pipeline::{PipelineSpec, Placement, Workload};
use parsort::pool::WorkPool;

/// The hook is a process-global; tests touching it must not interleave.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn spec(placement: Placement, lockstep: bool) -> PipelineSpec {
    PipelineSpec {
        total_bytes: 8 * 600,
        chunk_bytes: 8 * 100,
        p_in: 2,
        p_out: 2,
        p_comp: 3,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement,
        lockstep,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn negate(slice: &mut [i64], _ctx: KernelCtx) {
    slice.iter_mut().for_each(|x| *x = -*x);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>")
}

/// An armed chunk panics inside the dataflow compute stage, the ring's
/// poison machinery propagates it, and the run aborts with the injected
/// message rather than hanging or corrupting.
#[test]
fn armed_panic_poisons_the_dataflow_ring() {
    let _guard = ARM_LOCK.lock().unwrap();
    let pools = HostStagePools::new(2, 3, 2);
    let s = spec(Placement::Hbw, false);
    let data: Vec<i64> = (0..600).collect();
    let mut out = vec![0i64; 600];

    arm_compute_panic(3);
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate)
    }));
    disarm();

    let payload = result.expect_err("armed kernel panic must propagate");
    let msg = panic_message(&*payload);
    assert_eq!(msg, "fuzz fault injection: kernel panic on chunk 3");
}

/// The same fault through the lockstep path: the step batch propagates
/// the panic out of the shared pool's scoped join.
#[test]
fn armed_panic_propagates_through_lockstep() {
    let _guard = ARM_LOCK.lock().unwrap();
    let pool = WorkPool::new(4);
    let s = spec(Placement::Hbw, true);
    let data: Vec<i64> = (0..600).collect();
    let mut out = vec![0i64; 600];

    arm_compute_panic(1);
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_host_pipeline(&pool, &s, &data, &mut out, negate)
    }));
    disarm();

    let payload = result.expect_err("armed kernel panic must propagate");
    assert!(
        panic_message(&*payload).contains("fuzz fault injection"),
        "unexpected payload"
    );
}

/// Disarming restores full correctness: the very pools/pipeline that just
/// absorbed a poison produce bit-correct output on the next run.
#[test]
fn disarmed_pipeline_recovers_cleanly() {
    let _guard = ARM_LOCK.lock().unwrap();
    let pools = HostStagePools::new(2, 3, 2);
    let s = spec(Placement::Hbw, false);
    let data: Vec<i64> = (0..600).collect();

    let mut out = vec![0i64; 600];
    arm_compute_panic(2);
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        run_host_pipeline_dataflow(&pools, &s, &data, &mut out, negate)
    }));
    disarm();
    assert!(poisoned.is_err());

    let mut out2 = vec![0i64; 600];
    run_host_pipeline_dataflow(&pools, &s, &data, &mut out2, negate);
    let want: Vec<i64> = data.iter().map(|x| -x).collect();
    assert_eq!(out2, want, "pipeline must be fully usable after a poison");
}

/// A chunk index that never runs (beyond the schedule) leaves every mode
/// untouched — the probe is a true no-op unless its chunk executes.
#[test]
fn armed_out_of_range_chunk_is_inert() {
    let _guard = ARM_LOCK.lock().unwrap();
    let pool = WorkPool::new(4);
    let s = spec(Placement::Hbw, true);
    let data: Vec<i64> = (0..600).collect();
    let mut out = vec![0i64; 600];

    arm_compute_panic(999);
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_host_pipeline(&pool, &s, &data, &mut out, negate)
    }));
    disarm();
    assert!(result.is_ok());
    let want: Vec<i64> = data.iter().map(|x| -x).collect();
    assert_eq!(out, want);
}
