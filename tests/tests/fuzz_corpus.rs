//! The seeded schedule-fuzzing corpus.
//!
//! Sweeps `mlm_exec::fuzz`'s default corpus — every placement and
//! schedule mode `drive()` emits, at several chunk geometries — with
//! adversarial seed-controlled schedules, and replays the committed
//! must-fail regression seeds from `mlm_verify::fuzzsuite`. The default
//! run covers well over 1000 distinct schedules; CI's `fuzz` job runs the
//! same corpus wider (1000 seeds per case) via `mlm-verify fuzz`.

use mlm_exec::fuzz::{
    default_corpus, fuzz_seed, replay, shrink, Construction, FaultPlan, FuzzCase, Outcome,
    TapeSource,
};
use mlm_exec::Placement;
use mlm_verify::fuzzsuite::{regression_seeds, run_fuzz_regressions};
use proptest::prelude::*;

/// 100 seeds x 25 map-family cases plus 250 seeds x 10 stencil cases =
/// 5000 adversarial schedules, at least 2500 of them over halo-edge
/// geometries (incl. the ragged tail). Any finding on the correct
/// construction is a real orchestrator bug.
#[test]
fn corpus_sweep_finds_nothing_on_the_correct_construction() {
    let corpus = default_corpus();
    let mut schedules = 0u64;
    let mut stencil_schedules = 0u64;
    for case in &corpus {
        let stencil = case.name.starts_with("stencil");
        let seeds = if stencil { 250 } else { 100 };
        for seed in 0..seeds {
            let run = fuzz_seed(case, seed).expect("corpus cases are driveable");
            assert_eq!(run.outcome, Outcome::Ok, "{} seed {seed}", case.name);
            schedules += 1;
            if stencil {
                stencil_schedules += 1;
            }
        }
    }
    assert!(
        schedules >= 1000,
        "default run must cover >= 1000 schedules"
    );
    assert!(
        stencil_schedules >= 2500,
        "stencil sweep must cover >= 2500 halo-edge schedules, got {stencil_schedules}"
    );
}

/// Every committed regression seed still reproduces its violation on the
/// buggy construction, with a shrunk trace of at most 20 decisions, and
/// the identical trace runs clean on the shipped construction.
#[test]
fn committed_regression_seeds_reproduce_and_pass_on_main() {
    let runs = run_fuzz_regressions();
    assert_eq!(
        runs.len(),
        5,
        "one regression per model-checker bug class, plus the stencil halo class"
    );
    for run in runs {
        assert!(run.caught, "{}: violation no longer reproduces", run.name);
        assert!(
            run.clean_on_correct,
            "{}: trace violates the CORRECT construction",
            run.name
        );
        assert!(run.trace_len <= 20, "{}: trace too long", run.name);
    }
}

/// The regression traces are genuinely minimal-ish: replaying each
/// buggy construction with an *empty* tape (pure natural order) must NOT
/// reproduce the bug for the regressions that carry a nonempty trace —
/// i.e. the recorded decisions are load-bearing.
#[test]
fn nonempty_regression_traces_are_load_bearing() {
    for reg in regression_seeds() {
        if reg.shrunk.is_empty() {
            continue;
        }
        let natural = replay(&reg.case, &[]).expect("regression cases are driveable");
        let replayed = replay(&reg.case, &reg.shrunk).expect("regression cases are driveable");
        assert!(
            replayed.outcome.violation().is_some(),
            "{}: committed trace lost the bug",
            reg.name
        );
        // Natural order may or may not fail for some constructions; what
        // matters is that the committed trace is not vacuously equal to it.
        if natural.outcome.violation().is_none() {
            assert_ne!(natural.outcome, replayed.outcome, "{}", reg.name);
        }
    }
}

/// Determinism across the crate boundary: seed in, identical trace out.
#[test]
fn seeds_are_reproducible_across_processes() {
    let corpus = default_corpus();
    let case = corpus
        .iter()
        .find(|c| c.name == "hbw-dataflow-7")
        .expect("corpus contains hbw-dataflow-7");
    let a = fuzz_seed(case, 12345).expect("corpus cases are driveable");
    let b = fuzz_seed(case, 12345).expect("corpus cases are driveable");
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.outcome, Outcome::Ok);
    // And the recorded trace replays to the same outcome.
    let c = replay(case, &a.decisions).expect("corpus cases are driveable");
    assert_eq!(c.outcome, a.outcome);
}

/// The corpus construction helpers stay honest: all default cases are
/// correct-construction and fault-free (anything else belongs in the
/// regression battery, not the clean sweep).
#[test]
fn default_corpus_is_clean_by_construction() {
    for case in default_corpus() {
        assert_eq!(case.construction, Construction::Correct, "{}", case.name);
        assert_eq!(case.faults.kernel_panic, None, "{}", case.name);
    }
    // TapeSource is part of the committed-regression vocabulary.
    let _ = TapeSource::Replay(vec![0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shrinker's truncation + lowering loop reaches a fixed point:
    /// shrinking an already-shrunk trace changes nothing, and the result
    /// still reproduces the violation class it was shrunk for. Random
    /// tapes on a known-buggy construction give a steady supply of real
    /// violations to shrink.
    #[test]
    fn shrinker_reaches_a_fixed_point_on_random_tapes(
        tape in proptest::collection::vec(0u32..8, 0..40)
    ) {
        let case = FuzzCase {
            name: "prop-drop-recycle".into(),
            spec: mlm_exec::fuzz::corpus_spec(256, Placement::Hbw, false),
            construction: Construction::DropRecycleDep,
            faults: FaultPlan::NONE,
        };
        let run = replay(&case, &tape).expect("corpus spec is driveable");
        if let Some(v) = run.outcome.violation() {
            let kind = v.kind();
            let once = shrink(&case, &run.decisions, kind);
            let twice = shrink(&case, &once, kind);
            prop_assert_eq!(&once, &twice, "second shrink must be a no-op");
            prop_assert!(once.len() <= run.decisions.len());
            let rerun = replay(&case, &once).expect("corpus spec is driveable");
            let still = rerun.outcome.violation().map(|v| v.kind());
            prop_assert_eq!(still, Some(kind), "shrunk trace must keep the violation class");
        }
    }
}
