//! End-to-end host correctness: the real algorithms on real data, across
//! crates (pool + sorts + pipeline + memkind wired together).

use knl_sim::machine::{MachineConfig, MemMode};
use mlm_core::merge_bench::merge_kernel;
use mlm_core::pipeline::{host::run_host_pipeline, PipelineSpec, Placement, Workload};
use mlm_core::sort::host::{basic_chunked_sort, mlm_sort, run_host_sort};
use mlm_core::workload::{generate_keys, InputOrder};
use mlm_core::SortAlgorithm;
use mlm_memkind::{Kind, MemKind};
use parsort::pool::WorkPool;
use parsort::serial::is_sorted;

#[test]
fn all_variants_sort_all_orders_at_scale() {
    let pool = WorkPool::new(8);
    let n = 300_000;
    for order in InputOrder::ALL {
        let base = generate_keys(n, order, 99);
        let mut expect = base.clone();
        expect.sort_unstable();
        for alg in SortAlgorithm::TABLE1 {
            let mut v = base.clone();
            run_host_sort(&pool, alg, &mut v, 70_000);
            assert_eq!(v, expect, "{alg:?} {order:?}");
        }
        let mut v = base.clone();
        basic_chunked_sort(&pool, &mut v, 70_000);
        assert_eq!(v, expect, "basic {order:?}");
    }
}

#[test]
fn pool_sizes_do_not_affect_results() {
    let n = 100_000;
    let base = generate_keys(n, InputOrder::Random, 5);
    let mut expect = base.clone();
    expect.sort_unstable();
    for threads in [1usize, 2, 3, 7, 16] {
        let pool = WorkPool::new(threads);
        let mut v = base.clone();
        mlm_sort(&pool, &mut v, 33_333, true);
        assert_eq!(v, expect, "threads={threads}");
    }
}

#[test]
fn pipeline_with_merge_kernel_preserves_data() {
    let pool = WorkPool::new(6);
    let n = 120_000;
    let data = generate_keys(n, InputOrder::Random, 1);
    let spec = PipelineSpec {
        total_bytes: (n * 8) as u64,
        chunk_bytes: 8 * 10_000,
        p_in: 2,
        p_out: 2,
        p_comp: 2,
        compute_passes: 3,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    };
    let mut out = vec![0i64; n];
    let stats = run_host_pipeline(&pool, &spec, &data, &mut out, |slice, _| {
        merge_kernel(slice, 3)
    });
    assert_eq!(stats.chunks, 12);
    // The kernel permutes within slices; the global multiset must survive.
    let mut a = data.clone();
    let mut b = out.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn sorting_kernel_inside_pipeline_sorts_each_slice() {
    let pool = WorkPool::new(4);
    let n = 64_000;
    let data = generate_keys(n, InputOrder::Random, 2);
    let spec = PipelineSpec {
        total_bytes: (n * 8) as u64,
        chunk_bytes: 8 * 16_000,
        p_in: 1,
        p_out: 1,
        p_comp: 2,
        compute_passes: 1,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    };
    let mut out = vec![0i64; n];
    run_host_pipeline(&pool, &spec, &data, &mut out, |slice, _| {
        parsort::serial::introsort(slice)
    });
    // Each compute slice (chunk/p_comp) is sorted: 8 sorted runs.
    for run in out.chunks(8_000) {
        assert!(is_sorted(run));
    }
}

#[test]
fn memkind_capacity_mirrors_machine_modes() {
    for mode in [
        MemMode::Flat,
        MemMode::Cache,
        MemMode::Hybrid {
            cache_fraction: 0.25,
        },
    ] {
        let cfg = MachineConfig::knl_7250(mode);
        let mk = MemKind::new(&cfg);
        assert_eq!(
            mk.available(knl_sim::MemLevel::Mcdram),
            cfg.addressable_mcdram()
        );
        // A working set larger than MCDRAM must be stageable chunk-wise:
        // allocate chunk buffers strictly inside MCDRAM.
        if cfg.addressable_mcdram() > 0 {
            let chunk = cfg.addressable_mcdram() / 3;
            let bufs: Vec<_> = (0..3)
                .map(|_| mk.malloc(Kind::Hbw, chunk).unwrap())
                .collect();
            assert!(mk.malloc(Kind::Hbw, chunk).is_err(), "MCDRAM fully booked");
            for b in bufs {
                mk.free(b);
            }
        }
    }
}

#[test]
fn host_and_sim_agree_on_structure() {
    // The host run and the sim program are built from the same parameters;
    // check the chunk arithmetic agrees.
    let spec = PipelineSpec {
        total_bytes: 8 * 100_000,
        chunk_bytes: 8 * 12_000,
        p_in: 2,
        p_out: 2,
        p_comp: 4,
        compute_passes: 2,
        compute_rate: 1e9,
        copy_rate: 1e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    };
    let pool = WorkPool::new(4);
    let data = generate_keys(100_000, InputOrder::Random, 3);
    let mut out = vec![0i64; 100_000];
    let stats = run_host_pipeline(&pool, &spec, &data, &mut out, |_s, _c| {});
    assert_eq!(stats.chunks, spec.n_chunks());

    let prog = mlm_core::pipeline::sim::build_program(&spec).unwrap();
    let machine = MachineConfig::tiny(MemMode::Flat);
    let report = knl_sim::Simulator::new(machine).run(&prog).unwrap();
    // Sim moves every byte in and out exactly once.
    assert_eq!(
        report.traffic_on(knl_sim::MemLevel::Ddr).read,
        spec.total_bytes
    );
    assert_eq!(
        report.traffic_on(knl_sim::MemLevel::Ddr).written,
        spec.total_bytes
    );
}
