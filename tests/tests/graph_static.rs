//! Cross-crate assertions for the static schedule verifier.
//!
//! The analyzer (`mlm_exec::graph`) proves properties over *every*
//! linearization of the dependency graph `drive()` emits; these tests tie
//! it to the rest of the workspace: the fuzz corpus must prove safe, the
//! four committed buggy constructions must be refuted with counterexample
//! traces (no fuzz seeds involved), the simulator preflight must accept
//! the paper spec, and the whole thing must be fast enough to sit in
//! front of every run.

use std::time::Instant;

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_exec::fuzz::{default_corpus, fuzz_seed, Construction, FuzzCase, Outcome};
use mlm_exec::graph::{analyze, record_graph, AnalysisConfig, DepGraph, GraphNode};
use mlm_verify::graph::{graph_report_for, largest_committed_spec, run_graph_suite};
use mlm_verify::suite::{paper_machine, paper_spec};

/// Every fuzz-corpus case proves race-free, deadlock-free, and within the
/// ring/MCDRAM bounds statically — the proof covers all linearizations,
/// where the 100-seed sweep samples a few thousand.
#[test]
fn fuzz_corpus_is_statically_safe() {
    let machine = paper_machine();
    for case in default_corpus() {
        let report = graph_report_for(&case.spec, &machine).expect("corpus specs are driveable");
        assert!(report.is_safe(), "{}:\n{report}", case.name);
        assert!(
            report.peak_live_chunks <= case.spec.ring_slots(),
            "{}: peak {} chunks on a {}-slot ring",
            case.name,
            report.peak_live_chunks,
            case.spec.ring_slots()
        );
    }
}

/// The full suite (corpus + committed specs + must-fail constructions)
/// holds, and each must-fail case is caught with a counterexample trace.
#[test]
fn graph_suite_expectations_hold() {
    let cases = run_graph_suite();
    assert!(cases.len() > 30);
    for case in &cases {
        assert!(
            case.ok(),
            "{}: expected {:?}, fired {:?}",
            case.name,
            case.expect,
            case.fired()
        );
    }
    let must_fail = cases.iter().filter(|c| !c.expect.is_empty()).count();
    assert_eq!(
        must_fail, 5,
        "one static refutation per buggy construction, incl. the dropped-halo class"
    );
}

/// The static verdicts agree with the dynamic ones: for each buggy
/// construction the fuzzer catches at runtime, the analyzer refutes the
/// same (spec, construction) pair statically — and names the property
/// class the fuzzer's violation belongs to.
#[test]
fn static_findings_subsume_the_fuzzed_violations() {
    // (construction, violation kind the fuzzer reports, G-code family).
    let pairs = [
        (Construction::DropRecycleDep, "slot-clash", "G001"),
        (Construction::NoRecheck, "slot-clash", "G001"),
        (Construction::NotifyOne, "deadlock", "G002"),
    ];
    for (construction, kind, code) in pairs {
        let lockstep = matches!(
            construction,
            Construction::NotifyOne | Construction::NoRecheck
        );
        let spec = mlm_exec::fuzz::corpus_spec(256, mlm_exec::Placement::Hbw, lockstep);
        // Dynamic: some seed in a small window reproduces the violation.
        let case = FuzzCase {
            name: format!("subsume-{}", construction.name()),
            spec: spec.clone(),
            construction,
            faults: mlm_exec::fuzz::FaultPlan::NONE,
        };
        let caught = (0..200).any(|seed| {
            fuzz_seed(&case, seed)
                .expect("corpus specs are driveable")
                .outcome
                .violation()
                .is_some_and(|v| v.kind() == kind)
        });
        assert!(caught, "{}: fuzzer lost the bug", construction.name());
        // Static: the analyzer refutes the same pair with no seeds.
        let graph = record_graph(&spec).expect("corpus specs are driveable");
        let cfg = AnalysisConfig {
            discipline: construction.discipline(),
            ..AnalysisConfig::default()
        };
        let report = analyze(&graph, &spec, &cfg);
        assert!(
            report.codes().contains(&code),
            "{}: static analyzer missed {code}:\n{report}",
            construction.name()
        );
    }
}

/// The simulator's preflight accepts the paper spec and reports the
/// §3 ring bound: exactly 3 chunks (slots) live at peak, regardless of
/// how many chunks stream through.
#[test]
fn simulator_preflight_proves_the_paper_spec() {
    let sim = Simulator::try_new(paper_machine()).expect("paper machine is valid");
    let report = sim
        .preflight_spec(&paper_spec())
        .expect("paper spec must verify");
    assert_eq!(report.peak_live_chunks, 3);
    assert_eq!(
        report.peak_hbw_bytes,
        3 * paper_spec().chunk_bytes,
        "peak occupancy is ring slots x chunk size"
    );

    // And the same machine refuses a spec whose ring cannot fit: tiny
    // machine (64 MiB MCDRAM), 32 MiB chunks -> 96 MiB ring.
    let tiny = Simulator::try_new(MachineConfig::tiny(MemMode::Flat)).expect("tiny is valid");
    let mut fat = paper_spec();
    fat.total_bytes = 128 << 20;
    fat.chunk_bytes = 32 << 20;
    let err = tiny
        .preflight_spec(&fat)
        .expect_err("96 MiB ring in 64 MiB MCDRAM");
    assert!(err.to_string().contains("G003"), "{err}");
}

/// A hand-built cyclic graph is refuted as a deadlock with a readable
/// cycle trace — the analyzer does not require `drive()`-shaped input.
#[test]
fn hand_built_cycle_is_refuted() {
    let mut g = DepGraph::new();
    let a = g.push(GraphNode::Barrier, vec![2]);
    let b = g.push(GraphNode::Barrier, vec![a]);
    let _c = g.push(GraphNode::Barrier, vec![b]);
    let spec = paper_spec();
    let report = analyze(&g, &spec, &AnalysisConfig::default());
    assert_eq!(report.codes(), vec!["G002"]);
    let finding = &report.findings[0];
    assert!(!finding.trace.is_empty(), "cycle trace must name the nodes");
}

/// Lenient wall-clock smoke for the acceptance budget: the release-mode
/// gate (<100 ms, enforced by `sim_bench --check`) gets an order of
/// magnitude of debug-mode headroom here, so the test flags only
/// catastrophic blowups (e.g. an accidentally quadratic closure).
#[test]
fn verifier_latency_smoke() {
    let (name, spec) = largest_committed_spec();
    let machine = paper_machine();
    // Warm up, then best-of-3.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let report = graph_report_for(&spec, &machine).expect("committed spec is driveable");
        assert!(report.is_safe());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    assert!(
        best < 1.0,
        "{name}: static verification took {best:.3}s even in debug mode"
    );
    let _ = Outcome::Ok;
}
