//! Integration test crate for the MLM-KNL reproduction (tests live in `tests/`).
