//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by
//! hand-parsing the item's token stream (no `syn`/`quote`, which are
//! unavailable offline) and emitting impls of the vendored `serde` crate's
//! `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * structs with named fields (no generics);
//! * enums whose variants are unit or struct-like (externally tagged,
//!   matching serde's default JSON representation);
//! * the `#[serde(default)]` field attribute: a missing field
//!   deserializes via `Default::default()` instead of erroring, so specs
//!   serialized before a field existed keep loading.
//!
//! Anything else (tuple structs, tuple variants, generics, other `serde`
//! attributes) panics at macro-expansion time with a clear message rather
//! than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its name plus whether `#[serde(default)]` was set.
struct Field {
    name: String,
    default: bool,
}

/// Parsed item: name plus struct fields or enum variants.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<Field>>)>,
    },
}

/// `true` if the attribute group tokens spell `serde(default)`.
fn is_serde_default(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else {
        return false;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match args.as_slice() {
                [TokenTree::Ident(arg)] if arg.to_string() == "default" => true,
                other => panic!(
                    "serde derive: only #[serde(default)] is supported, got #[serde({})]",
                    other
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            }
        }
        _ => false,
    }
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens,
/// reporting whether any skipped attribute was `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                if let Some(attr) = tokens.get(i + 1) {
                    default |= is_serde_default(attr);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return (i, default),
        }
    }
}

/// Parse the named fields of a brace-delimited body.
fn parse_named_fields(body: &[TokenTree], context: &str) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let (j, default) = skip_attrs_and_vis(body, i);
        i = j;
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name in {context}, got {other}"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field {name} in {context}, got {other} (tuple fields are unsupported)"),
        }
        // Consume the type: everything to the next top-level comma, where
        // "top-level" tracks `<`/`>` nesting (generic arguments contain
        // commas that do not end the field).
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Parse the derive input item.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic type {name} is unsupported by the vendored derive");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        other => panic!(
            "serde derive: {name} must have a braced body (tuple/unit items unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name: name.clone(),
            fields: parse_named_fields(&body, &name),
        },
        "enum" => {
            let mut variants = Vec::new();
            let mut i = 0;
            while i < body.len() {
                let (j, _) = skip_attrs_and_vis(&body, i);
                i = j;
                if i >= body.len() {
                    break;
                }
                let vname = match &body[i] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde derive: expected variant name in {name}, got {other}"),
                };
                i += 1;
                let mut fields = None;
                match body.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        fields = Some(parse_named_fields(&inner, &vname));
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde derive: tuple variant {name}::{vname} is unsupported by the vendored derive"
                        );
                    }
                    _ => {}
                }
                if let Some(TokenTree::Punct(p)) = body.get(i) {
                    if p.as_char() == '=' {
                        panic!("serde derive: discriminants ({name}::{vname}) are unsupported");
                    }
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Derive `Serialize` (vendored serde's Value-tree trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut entries = String::new();
            for f in &fields {
                let f = &f.name;
                entries.push_str(&format!(
                    "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string()),"
                    )),
                    Some(fs) => {
                        let pat = fs
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut entries = String::new();
                        for f in fs {
                            let f = &f.name;
                            entries.push_str(&format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::value::Value::Map(vec![(\
                                 \"{vname}\".to_string(), \
                                 ::serde::value::Value::Map(vec![{entries}])\
                             )]),"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}\n"
            ));
        }
    }
    out.parse()
        .expect("serde derive: generated invalid Serialize impl")
}

/// Derive `Deserialize` (vendored serde's Value-tree trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let (f, default) = (&f.name, f.default);
                if default {
                    inits.push_str(&format!(
                        "{f}: match v.get(\"{f}\") {{ \
                             Some(x) => ::serde::Deserialize::from_value(x)?, \
                             None => ::core::default::Default::default(), \
                         }},"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| \
                             ::serde::DeError(\"{name}: missing field `{f}`\".to_string()))?)?,"
                    ));
                }
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::value::Value::Map(_) => Ok({name} {{ {inits} }}),\n\
                             other => Err(::serde::DeError(format!(\
                                 \"expected map for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    None => unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),")),
                    Some(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            let (f, default) = (&f.name, f.default);
                            if default {
                                inits.push_str(&format!(
                                    "{f}: match inner.get(\"{f}\") {{ \
                                         Some(x) => ::serde::Deserialize::from_value(x)?, \
                                         None => ::core::default::Default::default(), \
                                     }},"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").ok_or_else(|| \
                                         ::serde::DeError(\"{name}::{vname}: missing field `{f}`\".to_string()))?)?,"
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::value::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::DeError(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\
                                 \"bad value for enum {name}: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            ));
        }
    }
    out.parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
