//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a small strategy-based random tester with proptest's spelling:
//! `proptest! { fn prop(x in strategy) { ... } }`, `Strategy`/`prop_map`/
//! `boxed`, `any::<T>()`, `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! and range strategies over integers and floats.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! * deterministic generation — the RNG is seeded from the test's module
//!   path, name, and case index, so runs are reproducible and CI-stable;
//! * `prop_assert*` maps to `assert*` (panics instead of returning `Err`).
//!
//! Integer strategies bias toward range endpoints with probability ~1/8 per
//! endpoint to keep edge-case coverage despite the small default case count.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 generator; one instance per test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's identity and case index so every run of the
    /// suite explores the same sequence (reproducible CI).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then fold in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % n
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy; output of [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u128) as usize;
        self.options[ix].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy, à la proptest's
/// `Arbitrary`. Obtain the strategy with [`any`].
pub trait Arbitrary: Sized {
    /// Generate a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T` (e.g. `any::<i64>()`, `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Occasionally emit the values most likely to break code.
                match rng.next_u64() % 16 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Bias toward the endpoints: small case counts still see them.
                match rng.next_u64() % 16 {
                    0 | 1 => self.start,
                    2 | 3 => self.end - 1,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {self:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                match rng.next_u64() % 16 {
                    0 | 1 => lo,
                    2 | 3 => hi,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp it back out.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy {self:?}");
        match rng.next_u64() % 16 {
            0 | 1 => lo,
            2 | 3 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

pub mod collection {
    //! Strategies for collections (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range {r:?}");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size` (range or exact).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = match rng.next_u64() % 16 {
                // Endpoint bias: empty/minimal and maximal lengths are where
                // collection code usually breaks.
                0 | 1 => self.size.min,
                2 => self.size.max,
                _ => self.size.min + rng.below(span) as usize,
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Define deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0u64..10, mut v in proptest::collection::vec(any::<i64>(), 0..100)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; expands each property fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__test_name, __case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                // The body runs inside a closure so `prop_assume!` can
                // reject the case via an early `Err` return.
                let __outcome = (move || -> ::std::result::Result<(), ()> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(()) => continue,
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Uniform choice among strategies with a common value type; alternatives
/// are boxed, matching how this workspace calls it.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($option)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..2000 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
            let n = crate::Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |case| {
            let mut rng = crate::TestRng::for_case("det", case);
            crate::Strategy::generate(&crate::collection::vec(any::<i64>(), 0..64), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        // Different cases should (overwhelmingly) differ.
        assert!((0..16).any(|c| gen(c) != gen(c + 16)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro plumbing itself: bindings, tuples, map, oneof, assume.
        #[test]
        fn macro_forms_work(
            (a, b) in (0u32..10, 10u32..20),
            flag in any::<bool>(),
            mut v in crate::collection::vec(0i32..5, 0..=4),
            c in prop_oneof![Just(1u8).boxed(), (2u8..4).boxed()],
        ) {
            prop_assume!(a != 9);
            v.push(1);
            prop_assert!(a < 10 && b >= 10, "a={a} b={b}");
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!([false, true][usize::from(flag)], flag);
            prop_assert!((1..4).contains(&c));
        }
    }
}
