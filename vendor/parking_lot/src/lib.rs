//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`Condvar`] with non-poisoning guards. Everything is a
//! thin wrapper over `std::sync`; poisoning is swallowed (a panicked
//! holder does not poison the lock, matching parking_lot semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` returns a guard directly (no `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard by value (std's wait consumes it) and put it back; it is
/// `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable working with [`MutexGuard`] by `&mut` reference,
/// parking_lot-style.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
