//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework with serde's
//! spelling: `#[derive(Serialize, Deserialize)]` (via the sibling
//! `serde_derive` proc-macro) and `serde_json::{to_string, from_str}`.
//!
//! Unlike real serde's zero-copy visitor architecture, this model routes
//! everything through an owned [`value::Value`] tree — plenty for the
//! config/report structs this workspace serializes, and small enough to
//! audit. Supported shapes: primitives, `String`, `Option<T>`, `Vec<T>`,
//! fixed-size arrays, tuples up to 4, named-field structs, and enums with
//! unit or struct variants (externally tagged, matching serde's default
//! JSON representation).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing data model all (de)serialization routes through.

    /// A JSON-shaped value tree.
    ///
    /// Integers keep their signedness so `u64::MAX`-ish values round-trip
    /// exactly instead of detouring through `f64`.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Non-negative integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating-point number.
        F64(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object; insertion-ordered, no deduplication.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Map lookup by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }
}

use value::Value;

/// Deserialization failure with a human-readable path-free message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, got {got:?}")))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of i64 range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            other => type_err("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expect = [$($i,)+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected tuple of {expect}, got {}", items.len())));
                        }
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    other => type_err("tuple (array)", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let a: [f64; 2] = [0.5, 2.5];
        assert_eq!(<[f64; 2]>::from_value(&a.to_value()), Ok(a));
        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&o.to_value()), Ok(None));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }
}
