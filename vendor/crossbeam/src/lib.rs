//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors what it uses: `crossbeam::channel`'s unbounded
//! multi-producer multi-consumer channel ([`channel::unbounded`],
//! [`channel::Sender`], [`channel::Receiver`]). The implementation is a
//! `Mutex<VecDeque>` + `Condvar`; adequate for the pool sizes and message
//! rates in this workspace (task handoff, not high-frequency streaming).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake receivers so they can observe
                // disconnection instead of parking forever.
                let _guard = self.chan.queue.lock();
                self.chan.ready.notify_all();
            }
        }
    }

    /// Receiving half; clone freely for multiple consumers.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the channel is empty;
        /// errors once it is empty *and* every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99).unwrap();
            assert_eq!(h.join().unwrap(), 99);
        }
    }
}
