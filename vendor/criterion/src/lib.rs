//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal harness with criterion's API spelling: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of statistical sampling, each benchmark body runs one warm-up
//! iteration plus one timed iteration and prints the wall-clock time (and
//! derived throughput when declared). That keeps `cargo bench` runnable and
//! cheap on this single-CPU container; results are indicative, not
//! confidence-intervalled.

use std::fmt;
use std::time::Instant;

/// Top-level harness handle; holds nothing but exists so the macros and
/// function signatures match real criterion.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", &id.to_string(), None, f);
        self
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter, `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; this harness always runs one timed
    /// iteration regardless of the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no sampling schedule here).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &id.to_string(), self.throughput, f);
        self
    }

    /// Run a benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id.to_string(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (report separator, matching criterion's API).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` does the timing.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` once untimed (warm-up), then once timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        let out = f();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let secs = b.elapsed_ns as f64 / 1e9;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            format!("  ({:.2} GiB/s)", n as f64 / secs / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / secs / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {label}: {:.3} ms{rate}", b.elapsed_ns as f64 / 1e6);
}

/// Collect benchmark functions into a runnable group fn, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        let mut runs = 0;
        g.bench_function("sum", |b| {
            b.iter(|| (0..4).sum::<u64>());
            runs += 1;
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
