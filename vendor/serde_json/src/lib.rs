//! Offline stand-in for `serde_json`.
//!
//! JSON text codec over the vendored `serde` crate's [`serde::value::Value`]
//! tree: [`to_string`] walks a `Serialize` type's value tree and writes RFC
//! 8259 JSON; [`from_str`] parses JSON with a recursive-descent parser and
//! hands the tree to `Deserialize::from_value`.
//!
//! Numbers keep their signedness (`u64`/`i64`) unless they contain a `.`,
//! `e`, or `E`, in which case they parse as `f64`. Non-finite floats
//! serialize as `null`, matching serde_json's behaviour.

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // round-trips, so parse(format(x)) == x.
                let s = format!("{f}");
                out.push_str(&s);
                // Bare integral floats (e.g. "3") must stay floats on
                // re-parse; add ".0" like serde_json does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-UTF8 number".into()))?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Advance over the unescaped run, then append it as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII identifiers; map lone
                            // surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!(),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        // Integral floats keep a fractional marker so they re-parse as F64.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\"\nline\\with\tstuff".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let json = "  [ {\"a\" : [1, 2]} , {\"b\" : []} ]  ";
        let mut p = Parser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value().unwrap();
        assert_eq!(v.get("nope"), None);
        if let Value::Seq(items) = v {
            assert_eq!(items.len(), 2);
            assert_eq!(
                items[0].get("a"),
                Some(&Value::Seq(vec![Value::U64(1), Value::U64(2)]))
            );
        } else {
            panic!("expected seq");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
