//! Tour of the MCDRAM usage modes: capacity, allocation policy, and how
//! the same chunked program behaves in flat, cache, hybrid, and implicit
//! modes.
//!
//! Run with: `cargo run -p mlm-examples --bin cache_mode_study --release`

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::{MemLevel, Simulator};
use mlm_core::pipeline::{sim::build_program, PipelineSpec, Placement, Workload};
use mlm_memkind::{Kind, MemKind};

fn spec(placement: Placement, p_copy: usize) -> PipelineSpec {
    PipelineSpec {
        total_bytes: 8_000_000_000,
        chunk_bytes: 500_000_000,
        p_in: p_copy,
        p_out: p_copy,
        p_comp: 256 - 2 * p_copy,
        compute_passes: 4,
        compute_rate: 1.4e9,
        copy_rate: 4.8e9,
        placement,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn main() {
    println!("== MCDRAM capacity by mode (memkind view) ==");
    for (name, mode) in [
        ("flat", MemMode::Flat),
        ("cache", MemMode::Cache),
        (
            "hybrid 50/50",
            MemMode::Hybrid {
                cache_fraction: 0.5,
            },
        ),
    ] {
        let cfg = MachineConfig::knl_7250(mode);
        let mk = MemKind::new(&cfg);
        println!(
            "  {name:<13} hbw_malloc available: {:>5.1} GiB, cache: {:>5.1} GiB",
            mk.available(MemLevel::Mcdram) as f64 / (1u64 << 30) as f64,
            cfg.effective_cache_capacity() as f64 / (1u64 << 30) as f64,
        );
        // HBW_PREFERRED falls back to DDR rather than failing.
        let a = mk.malloc(Kind::HbwPreferred, 20 << 30).unwrap();
        println!(
            "    20 GiB HBW_PREFERRED allocation landed in {:?}",
            a.level()
        );
        mk.free(a);
    }

    println!();
    println!("== One chunked workload (8 GB, 4 passes/chunk), four usage modes ==");
    let runs = [
        (
            "chunked flat (explicit copies)",
            MemMode::Flat,
            spec(Placement::Hbw, 8),
        ),
        (
            "chunked hybrid (smaller chunks)",
            MemMode::Hybrid {
                cache_fraction: 0.5,
            },
            {
                let mut s = spec(Placement::Hbw, 8);
                s.chunk_bytes = 250_000_000; // hybrid halves the addressable space
                s
            },
        ),
        (
            "chunked DDR only (no MCDRAM)",
            MemMode::Flat,
            spec(Placement::Ddr, 8),
        ),
        ("implicit cache mode (no copies)", MemMode::Cache, {
            let mut s = spec(Placement::Implicit, 8);
            s.p_in = 0;
            s.p_out = 0;
            s.p_comp = 256;
            s
        }),
    ];
    for (name, mode, s) in runs {
        let machine = MachineConfig::knl_7250(mode);
        let prog = build_program(&s).unwrap();
        let r = Simulator::new(machine).run(&prog).unwrap();
        println!(
            "  {name:<32} {:>6.2} virtual s   DDR {:>6.1} GB, MCDRAM {:>6.1} GB moved, cache hit rate {:>5.1}%",
            r.makespan,
            r.ddr_traffic() as f64 / 1e9,
            r.mcdram_traffic() as f64 / 1e9,
            r.cache.hit_rate() * 100.0,
        );
    }
    println!();
    println!("The chunked-flat run beats DDR-only by moving compute traffic onto the");
    println!("400 GB/s MCDRAM; implicit mode keeps most of that benefit with no");
    println!("explicit data movement — the paper's central observation.");
}
