//! Quickstart: sort real data with MLM-sort, then reproduce a slice of the
//! paper's KNL experiment in the simulator.
//!
//! Run with: `cargo run -p mlm-examples --bin quickstart --release`

use mlm_core::sort::host::mlm_sort;
use mlm_core::sort::sim::build_sort_program;
use mlm_core::workload::{generate_keys, InputOrder, SortWorkload};
use mlm_core::{Calibration, SortAlgorithm};
use parsort::pool::WorkPool;
use parsort::serial::is_sorted;

fn main() {
    // ---- Host: actually sort something ------------------------------------
    let pool = WorkPool::new(std::thread::available_parallelism().map_or(4, |p| p.get()));
    let n = 2_000_000;
    let mut keys = generate_keys(n, InputOrder::Random, 42);

    let stats = mlm_sort(&pool, &mut keys, n / 4, /* explicit staging */ true);
    assert!(is_sorted(&keys));
    println!(
        "host: sorted {n} random i64 keys with MLM-sort ({} megachunks, {} serial chunk sorts) in {:?}",
        stats.megachunks, stats.chunk_sorts, stats.elapsed
    );

    // ---- Simulator: the paper's 2-billion-element flat-mode run -----------
    let machine = knl_sim::MachineConfig::knl_7250(knl_sim::MemMode::Flat);
    let cal = Calibration::default();
    let w = SortWorkload::int64(2_000_000_000, InputOrder::Random);
    let prog = build_sort_program(
        &machine,
        &cal,
        w,
        SortAlgorithm::MlmSort,
        1_000_000_000,
        256,
    )
    .expect("valid experiment");
    let report = knl_sim::Simulator::new(machine)
        .run(&prog)
        .expect("simulation runs");
    println!(
        "sim:  MLM-sort of 2B int64 on a flat-mode KNL: {:.2} virtual seconds \
         (paper measured 8.09 s), DDR traffic {:.1} GB, MCDRAM traffic {:.1} GB",
        report.makespan,
        report.ddr_traffic() as f64 / 1e9,
        report.mcdram_traffic() as f64 / 1e9,
    );
}
