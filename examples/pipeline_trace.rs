//! Visualize the triple-buffered pipeline as a Gantt chart — the paper's
//! Figure 2 ("chunking and buffering"), rendered from an actual simulated
//! execution instead of drawn by hand.
//!
//! Run with: `cargo run -p mlm-examples --bin pipeline_trace --release`

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::Simulator;
use mlm_core::pipeline::{sim::build_program, PipelineSpec, Placement, Workload};

fn main() {
    // A small pipeline so each thread's row is legible: 2 copy-in, 2
    // copy-out, 4 compute threads; 6 chunks.
    let spec = PipelineSpec {
        total_bytes: 12_000_000_000,
        chunk_bytes: 2_000_000_000,
        p_in: 2,
        p_out: 2,
        p_comp: 4,
        compute_passes: 2,
        compute_rate: 3.0e9,
        copy_rate: 4.8e9,
        placement: Placement::Hbw,
        lockstep: true,
        data_addr: 0,
        workload: Workload::Map,
    };
    let machine = MachineConfig::knl_7250(MemMode::Flat);
    let prog = build_program(&spec).unwrap();
    let (report, trace) = Simulator::new(machine).run_traced(&prog).unwrap();

    println!(
        "Triple-buffered pipeline, {} chunks, lockstep steps",
        spec.n_chunks()
    );
    println!("threads 0-1: copy-in | threads 2-3: copy-out | threads 4-7: compute");
    println!("(compare with the paper's Figure 2)\n");
    println!("{}", trace.gantt(0..spec.threads(), 72));
    println!("DDR    |{}|", trace.bus_sparkline(true, 72));
    println!("MCDRAM |{}|", trace.bus_sparkline(false, 72));
    println!();
    println!("makespan: {:.3} virtual s", report.makespan);
    println!(
        "DDR moved: {:.1} GB, MCDRAM moved: {:.1} GB",
        report.ddr_traffic() as f64 / 1e9,
        report.mcdram_traffic() as f64 / 1e9
    );
    for t in 0..spec.threads() {
        println!(
            "thread {t}: busy {:>5.1}%",
            trace.thread_busy_fraction(t) * 100.0
        );
    }
    println!();
    println!("Note the fill/drain steps: copy-in rows start busy and idle at the");
    println!("end; copy-out rows mirror them; compute rows stay dense in between —");
    println!("exactly the overlap structure of the paper's chunking figures.");
}
