//! Compare every Table-1 sort variant, both natively (real data, wall
//! clock) and on the simulated KNL (virtual seconds at paper scale).
//!
//! Run with: `cargo run -p mlm-examples --bin mlm_sort_demo --release`

use mlm_core::sort::host::run_host_sort;
use mlm_core::sort::sim::build_sort_program;
use mlm_core::workload::{generate_keys, InputOrder, SortWorkload};
use mlm_core::{Calibration, SortAlgorithm};
use parsort::pool::WorkPool;
use parsort::serial::is_sorted;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = WorkPool::new(threads);
    let n_host = 4_000_000;
    let mega_host = n_host / 4;

    println!("== Host scale: {n_host} random i64 keys, {threads} threads ==");
    for alg in SortAlgorithm::TABLE1 {
        let mut keys = generate_keys(n_host, InputOrder::Random, 7);
        let stats = run_host_sort(&pool, alg, &mut keys, mega_host);
        assert!(is_sorted(&keys), "{alg:?} must sort");
        println!(
            "  {:<13} {:>9.1} ms",
            alg.label(),
            stats.elapsed.as_secs_f64() * 1e3
        );
    }

    println!();
    println!("== Simulated KNL: 2,000,000,000 int64 keys, 256 threads ==");
    let cal = Calibration::default();
    for order in [InputOrder::Random, InputOrder::Reverse] {
        println!("  input order: {}", order.label());
        let w = SortWorkload::int64(2_000_000_000, order);
        for alg in SortAlgorithm::TABLE1 {
            let mode = if alg.needs_cache_mode() {
                knl_sim::MemMode::Cache
            } else {
                knl_sim::MemMode::Flat
            };
            let machine = knl_sim::MachineConfig::knl_7250(mode);
            let mega = if alg == SortAlgorithm::MlmImplicit {
                w.n
            } else {
                1_000_000_000
            };
            let prog = build_sort_program(&machine, &cal, w, alg, mega, 256).unwrap();
            let report = knl_sim::Simulator::new(machine).run(&prog).unwrap();
            println!("    {:<13} {:>6.2} virtual s", alg.label(), report.makespan);
        }
    }
}
