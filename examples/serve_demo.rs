//! Serving demo: one mixed batch of sort jobs, FIFO vs weighted fair-share.
//!
//! A 96 GiB batch sort arrives first and takes a 6 GiB ring out of the
//! broker's 8 GiB MCDRAM budget. Behind it queue small interactive sorts
//! (0.75 GiB rings, which still fit) and standard sorts (3 GiB rings,
//! which do not). FIFO stops at the first job that does not fit, so once a
//! standard sort reaches the head of the queue everything behind it waits
//! for the elephant; weighted fair-share skips the blocked class and keeps
//! the interactive jobs flowing.
//!
//! Run with: `cargo run -p mlm-examples --bin serve_demo --release`

use knl_sim::machine::{MachineConfig, MemMode};
use knl_sim::GIB;
use mlm_core::ModelParams;
use mlm_exec::{PipelineSpec, Placement, Workload};
use mlm_serve::{serve, DeadlineClass, JobRequest, Policy, ServeConfig};

/// A chunked MLM-sort job: two compute passes over an MCDRAM buffer ring,
/// thread pools sized by the paper's Eqs. 1–5 for a dedicated machine.
fn sort_spec(machine: &MachineConfig, total: u64, chunk: u64) -> PipelineSpec {
    let passes = 2;
    let m = ModelParams {
        b_copy: total as f64,
        ddr_max: machine.ddr_bandwidth,
        mcdram_max: machine.effective_mcdram_bandwidth(),
        s_copy: machine.per_thread_copy_bw,
        s_comp: machine.per_thread_compute_bw,
        total_threads: machine.total_threads(),
    };
    let split = m.optimal_split(passes).expect("machine has enough threads");
    PipelineSpec {
        total_bytes: total,
        chunk_bytes: chunk,
        p_in: split.p_in,
        p_out: split.p_out,
        p_comp: split.p_comp,
        compute_passes: passes,
        compute_rate: machine.per_thread_compute_bw,
        copy_rate: machine.per_thread_copy_bw,
        placement: Placement::Hbw,
        lockstep: false,
        data_addr: 0,
        workload: Workload::Map,
    }
}

fn main() {
    let machine = MachineConfig::knl_7250(MemMode::Flat);

    // The batch: an elephant sort, six interactive sorts, three standard.
    let mut jobs = vec![JobRequest::new(
        0,
        0.0,
        DeadlineClass::Batch,
        sort_spec(&machine, 96 * GIB, 2 * GIB),
    )];
    for i in 0..6u64 {
        jobs.push(JobRequest::new(
            1 + i,
            0.2 + 0.3 * i as f64,
            DeadlineClass::Interactive,
            sort_spec(&machine, 4 * GIB, GIB / 4),
        ));
    }
    for i in 0..3u64 {
        jobs.push(JobRequest::new(
            7 + i,
            0.5 + 0.8 * i as f64,
            DeadlineClass::Standard,
            sort_spec(&machine, 24 * GIB, GIB),
        ));
    }
    jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    for policy in [Policy::Fifo, Policy::FairShare] {
        let mut cfg = ServeConfig::new(machine.clone());
        cfg.policy = policy;
        cfg.mcdram_budget = 8 * GIB; // tight: the elephant's ring is 6 GiB
        let out = serve(&cfg, &jobs).expect("all demo jobs fit the broker");

        println!("--- policy: {} (8 GiB MCDRAM budget) ---", policy.label());
        println!(
            "{:>4}  {:<11} {:>9} {:>9} {:>9} {:>10}",
            "job", "class", "arrive_s", "start_s", "finish_s", "latency_s"
        );
        for r in &out.records {
            println!(
                "{:>4}  {:<11} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
                r.id,
                r.class.label(),
                r.arrival,
                r.start,
                r.finish,
                r.latency()
            );
        }
        println!(
            "fleet: mean latency {:.2} s, p99 {:.2} s, MCDRAM high water {:.1} GiB\n",
            out.fleet.mean_latency,
            out.fleet.p99_latency,
            out.fleet.mcdram_high_water as f64 / GIB as f64
        );
    }
}
