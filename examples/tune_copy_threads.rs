//! Use the paper's §3.2 model — and the simulator as a cross-check — to
//! choose the number of copy threads for a buffered chunking workload.
//!
//! Run with: `cargo run -p mlm-examples --bin tune_copy_threads --release -- [repeats]`

use mlm_core::merge_bench::{empirical_optimal_copy_threads, MergeBenchParams};
use mlm_core::model::ModelParams;
use mlm_core::Calibration;

fn main() {
    let repeats: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let model = ModelParams::paper_table2();
    let machine = knl_sim::MachineConfig::knl_7250(knl_sim::MemMode::Flat);
    let cal = Calibration::default();

    println!(
        "workload: {} read+write passes per byte staged through MCDRAM",
        repeats
    );

    let (p_model, t_model) = model.optimal_copy_threads(repeats);
    println!(
        "model (Eqs. 1-5):   use {p_model} copy-in + {p_model} copy-out threads \
         (predicted {t_model:.3} s for {:.1} GB)",
        model.b_copy / 1e9
    );

    let base = MergeBenchParams::paper(1, repeats);
    let candidates = [1, 2, 4, 8, 16, 32];
    let (p_sim, t_sim) =
        empirical_optimal_copy_threads(&machine, &cal, &base, &candidates).unwrap();
    println!("simulator sweep:    best power-of-two is {p_sim} ({t_sim:.3} virtual s)");

    println!();
    println!("rule of thumb from the paper: the more compute per byte, the fewer");
    println!("copy threads you want — rerun with a different repeats argument to see");
    println!("the optimum move.");
}
